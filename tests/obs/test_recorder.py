"""Flight recorder: journaling, round trips, diff, and deterministic replay."""

import io

import pytest

from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.core.resilience import (
    ChaosOracle,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)
from repro.ctr.formulas import atoms
from repro.obs import (
    FlightRecorder,
    Observability,
    diff_traces,
    read_trace,
    render_trace,
    replay_trace,
    write_trace,
)
from repro.obs.recorder import Decision, ReplayDivergenceError, ReplayStrategy


def record_run(goal_text, constraints=(), chaos=None, policies=None,
               clock=None, jobs=1):
    """Run a workflow with a recorder attached and return (trace, report).

    Mirrors what ``repro run --trace`` does: header with spec source, chaos
    plan, and policies; summary with schedule, digest, and counters.
    ``jobs>1`` compiles through the parallel disjunct fan-out instead of
    the sequential pipeline.
    """
    from repro.spec import parse_specification

    spec_lines = [f"goal: {goal_text}"]
    spec_lines += [f"constraint: {c}" for c in constraints]
    spec_text = "\n".join(spec_lines) + "\n"
    spec = parse_specification(spec_text)

    clock = clock or VirtualClock()
    policies = policies if policies is not None else ResiliencePolicy()
    obs = Observability.enabled(trace=True, metrics=False, record=True)
    if jobs == 1:
        compiled = spec.compile()
    else:
        compiled = compile_workflow(spec.goal, list(spec.constraints),
                                    rules=spec.rules, jobs=jobs)
    engine = WorkflowEngine(compiled, oracle=chaos, policies=policies,
                            clock=clock, obs=obs)
    report = engine.run()

    header = {
        "spec": spec_text,
        "chaos": chaos.plan() if chaos is not None else None,
        "policies": policies.to_dict(),
        "strategy": "first",
    }
    summary = {
        "schedule": list(report.schedule),
        "digest": report.database.digest(),
        "attempts": dict(report.attempts),
        "failures": len(report.failures),
        "reroutes": len(report.reroutes),
    }
    buffer = io.StringIO()
    write_trace(buffer, header, spans=obs.tracer.spans,
                recorder=obs.recorder, summary=summary)
    buffer.seek(0)
    return read_trace(buffer), report


class TestRecorder:
    def test_decisions_journal_in_order(self):
        a, b, c = atoms("a b c")
        compiled = compile_workflow((a + b) >> c)
        obs = Observability.enabled(trace=False, metrics=False, record=True)
        WorkflowEngine(compiled, obs=obs).run()
        decisions = obs.recorder.decisions
        assert [d.chosen for d in decisions] == ["a", "c"]
        assert decisions[0].eligible == ("a", "b")
        assert all(d.verdict == "ok" for d in decisions)
        assert all(d.digest for d in decisions)

    def test_failed_step_records_dead_verdict_and_reroute(self):
        a, b, c = atoms("a b c")
        compiled = compile_workflow((a + b) >> c)
        chaos = ChaosOracle().fail_event("a")
        obs = Observability.enabled(trace=False, metrics=False, record=True)
        report = WorkflowEngine(compiled, oracle=chaos, obs=obs).run()
        assert report.schedule == ("b", "c")
        verdicts = [d.verdict for d in obs.recorder.decisions]
        assert verdicts[0] == "dead:FaultInjected"
        assert "ok" in verdicts
        assert len(obs.recorder.reroutes) == 1
        assert obs.recorder.reroutes[0]["failed_event"] == "a"

    def test_round_trip_and_render(self):
        trace, _ = record_run("(a + b) * c", chaos=ChaosOracle().fail_event("a"))
        assert trace.header["format"] == 1
        assert trace.schedule == ("b", "c")
        assert len(trace.decisions) == 3  # dead a, then b, then c
        text = render_trace(trace)
        assert "flight recorder" in text
        assert "dead:FaultInjected" in text
        assert "reroute" in text


class TestReplayDeterminism:
    """The PR's acceptance satellite: a chaotic run replays identically."""

    def test_seeded_chaos_run_replays_identically(self):
        clock = VirtualClock()
        chaos = ChaosOracle(clock=clock, seed=1234).fail_rate(0.3)
        policies = ResiliencePolicy(
            default=RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0)
        )
        trace, report = record_run(
            "(a + b) * c * d", chaos=chaos, policies=policies, clock=clock
        )
        result = replay_trace(trace)
        assert result.matches, result.mismatches
        assert result.schedule == report.schedule
        assert result.digest == report.database.digest()
        assert dict(result.report.attempts) == dict(report.attempts)
        assert len(result.report.failures) == len(report.failures)
        assert len(result.report.reroutes) == len(report.reroutes)

    def test_parallel_compiled_run_replays_identically(self):
        # Satellite coverage: a trace recorded from a run whose goal came
        # out of the *parallel* verifier/compiler (jobs=2, disjunct
        # fan-out assembly) must still replay — the replay side recompiles
        # sequentially from the header spec, so this pins the
        # trace-equivalence contract between the two pipelines.
        goal_text = "receive * (a | b) * (approve + reject) * archive"
        constraints = ["precedes(a, approve) or never(approve)"]
        try:
            trace_par, report_par = record_run(goal_text, constraints,
                                               jobs=2)
        finally:
            from repro.core.parallel import shutdown_pool

            shutdown_pool()
        result = replay_trace(trace_par)
        assert result.matches, result.mismatches
        # Determinism across jobs settings: the jobs=1 recording of the
        # same spec produces the identical schedule and database digest.
        trace_seq, report_seq = record_run(goal_text, constraints, jobs=1)
        assert report_par.schedule == report_seq.schedule
        assert report_par.database.digest() == report_seq.database.digest()
        assert diff_traces(trace_par, trace_seq) == []

    def test_replay_covers_failover(self):
        chaos = ChaosOracle(seed=9).fail_event("approve")
        trace, report = record_run(
            "receive * (approve + reject) * archive", chaos=chaos
        )
        assert report.schedule == ("receive", "reject", "archive")
        result = replay_trace(trace)
        assert result.matches, result.mismatches

    def test_tampered_trace_is_detected(self):
        trace, _ = record_run("a * b")
        trace.summary["digest"] = "0" * 16
        result = replay_trace(trace)
        assert not result.matches
        assert any("digest" in m for m in result.mismatches)


class TestDiff:
    def test_identical_traces_have_no_diff(self):
        trace_a, _ = record_run("a * b")
        trace_b, _ = record_run("a * b")
        assert diff_traces(trace_a, trace_b) == []

    def test_divergent_schedules_are_reported(self):
        trace_a, _ = record_run("(a + b) * c")
        trace_b, _ = record_run("(a + b) * c", chaos=ChaosOracle().fail_event("a"))
        differences = diff_traces(trace_a, trace_b)
        assert differences
        assert any("schedule differs" in d for d in differences)


class TestReplayStrategy:
    def test_rejects_mismatched_eligible_set(self):
        strategy = ReplayStrategy([Decision(0, ("a", "b"), "a")])
        with pytest.raises(ReplayDivergenceError):
            strategy(frozenset({"a", "z"}), None)

    def test_rejects_extra_consultations(self):
        strategy = ReplayStrategy([])
        with pytest.raises(ReplayDivergenceError):
            strategy(frozenset({"a"}), None)

    def test_recorder_sorts_eligible(self):
        recorder = FlightRecorder()
        recorder.record(0, frozenset({"z", "a", "m"}), "m", "ok", "d1")
        assert recorder.decisions[0].eligible == ("a", "m", "z")


class TestObservabilityConfig:
    def test_disabled_is_inactive(self):
        assert not Observability.disabled().active

    def test_enabled_variants(self):
        assert Observability.enabled().active
        only_metrics = Observability.enabled(trace=False, record=False)
        assert only_metrics.active
        assert only_metrics.recorder is None
        assert not only_metrics.tracer.enabled


class TestDistributedReplayInterop:
    """`run --trace` stamps distributed ids into the journal header and
    `trace replay` re-mints the identical span tree under seeded chaos."""

    SPEC = (
        "goal: receive * (credit | stock) * approve\n"
        "constraint: precedes(credit, approve)\n"
    )

    def record(self, tmp_path):
        from repro.cli import main

        spec = tmp_path / "orders.workflow"
        spec.write_text(self.SPEC)
        trace_path = tmp_path / "run.trace.jsonl"
        out = io.StringIO()
        status = main([
            "run", str(spec), "--trace", str(trace_path), "--no-cache",
            "--fail-rate", "0.4", "--seed", "1234", "--retry", "5",
        ], out=out)
        assert status == 0, out.getvalue()
        return trace_path

    def test_header_carries_the_distributed_ids(self, tmp_path):
        trace_path = self.record(tmp_path)
        with open(trace_path, encoding="utf-8") as handle:
            trace = read_trace(handle)
        header = trace.header
        assert header["ids_seed"] == 1234
        assert header["span_check"] is True
        assert header["trace_id"] and len(header["trace_id"]) == 32
        assert trace.spans
        # The header names the run's first trace root (compile and engine
        # each root a trace); every span carries well-formed minted ids.
        assert trace.spans[0].trace_id == header["trace_id"]
        assert all(s.trace_id and len(s.trace_id) == 32
                   for s in trace.spans)
        assert all(s.ref and len(s.ref) == 16 for s in trace.spans)

    def test_replay_reproduces_the_span_tree(self, tmp_path):
        from repro.cli import main

        trace_path = self.record(tmp_path)
        out = io.StringIO()
        assert main(["trace", "replay", str(trace_path)], out=out) == 0
        assert "replay ok" in out.getvalue()

    def test_tampered_span_ref_fails_the_replay(self, tmp_path):
        import json

        from repro.cli import main

        trace_path = self.record(tmp_path)
        lines = trace_path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "span" and record.get("ref"):
                record["ref"] = "f" * 16
                lines[i] = json.dumps(record)
                break
        else:  # pragma: no cover - recording broke first
            pytest.fail("no span with a ref to tamper with")
        trace_path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        assert main(["trace", "replay", str(trace_path)], out=out) == 1
        assert "mismatch: span tree" in out.getvalue()
