"""SLO monitor: sliding-window objective evaluation and burn rates."""

import pytest

from repro.core.resilience import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOMonitor


def availability_monitor(target=0.9, **kwargs):
    objective = SLObjective(name="avail", kind="availability", target=target)
    return SLOMonitor([objective], clock=VirtualClock(), **kwargs)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="uptime", target=0.5)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", target=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", target=0.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", target=0.9)  # no threshold

    def test_goodness(self):
        avail = SLObjective(name="a", kind="availability", target=0.9)
        assert avail.good(True, 100.0) and not avail.good(False, 0.0)
        lat = SLObjective(name="l", kind="latency", target=0.9, threshold=0.5)
        assert lat.good(True, 0.4)
        assert not lat.good(True, 0.6)
        assert not lat.good(False, 0.1)  # a failed request is never good

    def test_defaults(self):
        names = [o.name for o in DEFAULT_OBJECTIVES]
        assert names == ["availability", "latency_p95_500ms"]


class TestMonitor:
    def test_empty_window_is_healthy(self):
        rows = availability_monitor().evaluate()
        assert rows[0]["ratio"] == 1.0
        assert rows[0]["burn_rate"] == 0.0
        assert rows[0]["met"] is True

    def test_burn_rate_math(self):
        monitor = availability_monitor(target=0.9)  # error budget = 0.1
        for _ in range(4):
            monitor.record(ok=True, latency=0.01)
        monitor.record(ok=False, latency=0.01)
        row = monitor.evaluate()[0]
        assert row["ratio"] == pytest.approx(0.8)
        assert row["burn_rate"] == pytest.approx(2.0)  # 0.2 / 0.1
        assert row["budget_remaining"] == pytest.approx(-1.0)
        assert row["met"] is False

    def test_window_slides(self):
        monitor = availability_monitor(target=0.9, window=10.0)
        monitor.record(ok=False, latency=0.0)
        assert monitor.evaluate()[0]["met"] is False
        monitor.clock.advance(11.0)
        monitor.record(ok=True, latency=0.0)
        row = monitor.evaluate()[0]
        assert row["events"] == 1 and row["met"] is True

    def test_max_events_bounds_memory(self):
        monitor = availability_monitor(max_events=3)
        for _ in range(10):
            monitor.record(ok=True, latency=0.0)
        assert monitor.evaluate()[0]["events"] == 3

    def test_snapshot_shape(self):
        snap = availability_monitor(window=60.0).snapshot()
        assert snap["window_s"] == 60.0
        assert isinstance(snap["objectives"], list)

    def test_export_gauges(self):
        monitor = availability_monitor(target=0.9)
        monitor.record(ok=False, latency=0.0)
        metrics = MetricsRegistry()
        monitor.export_gauges(metrics)
        assert metrics.gauge("slo.avail.ratio").value == 0.0
        assert metrics.gauge("slo.avail.burn_rate").value == 10.0
        monitor.export_gauges(None)  # metrics disabled: a no-op, not a crash
