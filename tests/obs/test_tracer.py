"""Tests for the hierarchical span tracer."""

import io
import json

import pytest

from repro.obs import NullTracer, Tracer
from repro.obs.tracer import Span, render_spans


class TestTracer:
    def test_nesting_records_parentage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans[0], tracer.spans[1]
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.name == "inner" and inner.parent_id == outer.span_id

    def test_span_order_is_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]

    def test_durations_are_monotonic(self):
        ticks = iter(range(100))
        tracer = Tracer(time_source=lambda: float(next(ticks)))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.duration >= inner.duration
        assert inner.duration >= 0

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            span.annotate(result="done")
        assert tracer.spans[0].attrs == {"items": 3, "result": "done"}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.spans[0]
        assert span.end is not None
        assert span.attrs["error"] == "ValueError"
        # The stack unwound: a new span is again a root.
        with tracer.span("after"):
            pass
        assert tracer.spans[1].parent_id is None

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert len(lines) == 2
        rebuilt = [Span.from_dict(d) for d in lines]
        assert [s.name for s in rebuilt] == ["a", "b"]
        assert rebuilt[0].attrs == {"n": 1}
        assert rebuilt[1].parent_id == rebuilt[0].span_id

    def test_root_span_ignores_the_open_stack(self):
        # An async server's tracer is shared by every task on the loop:
        # a request landing while another is awaiting must not inherit
        # that request's span — or its trace id — off the stack.
        from repro.obs.context import IdSource, TraceContext

        tracer = Tracer(ids=IdSource(seed=3))
        with tracer.span("http.verify") as busy:
            with tracer.span("http.healthz", root=True) as interloper:
                pass
        assert interloper.parent_id is None
        assert interloper.parent_ref is None
        assert interloper.trace_id != busy.trace_id
        # An explicit remote parent still wins over rootness.
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with tracer.span("outer"):
            with tracer.span("http.verify", ctx=ctx, root=True) as joined:
                pass
        assert joined.parent_id is None
        assert joined.trace_id == ctx.trace_id
        assert joined.parent_ref == ctx.span_id

    def test_render_collapses_sibling_runs(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(5):
                with tracer.span("step"):
                    pass
        text = render_spans(tracer.spans)
        assert "step x5" in text
        assert text.count("step") == 1


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", key="value") as span:
            span.annotate(more="stuff")
        assert tracer.spans == ()

    def test_null_span_is_shared(self):
        tracer = NullTracer()
        with tracer.span("a") as first:
            pass
        with tracer.span("b") as second:
            pass
        assert first is second
