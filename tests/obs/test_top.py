"""``repro top``: the frame renderer and the polling loop's edges."""

import io

from repro.obs.top import render_top, run_top

STATUS = {
    "workers": [
        {"worker": "w0", "healthy": True, "restarts": 0,
         "breaker": {"state": "closed", "failures": 0}},
        {"worker": "w1", "healthy": False, "restarts": 3,
         "breaker": {"state": "open", "failures": 5}},
    ],
    "ring": ["w0"],
    "replicas": 2,
    "slo": {
        "window_s": 300.0,
        "objectives": [
            {"name": "availability", "ratio": 0.875, "target": 0.999,
             "burn_rate": 125.0, "met": False},
            {"name": "latency_p95_500ms", "ratio": 1.0, "target": 0.95,
             "burn_rate": 0.0, "met": True},
        ],
    },
    "admission": {
        "capacity": 8.0, "in_flight": 2.0, "admitted": 41, "shed": 3,
        "tenants": {
            "acme": {"usage": 2.0, "share": 2.0, "shed": 3},
        },
    },
}

METRICS = {
    "workers": {
        "w0": {
            "counters": {},
            "histograms": {
                "service.http.verify.latency": {"count": 5, "p95": 0.012},
                "service.verify.batch_latency": {
                    "count": 5,
                    "exemplars": [[0.41, "orders@3"], [0.09, "claims@1"]],
                },
            },
        },
    },
    "totals": {
        "counters": {"service.verify.submitted": 20,
                     "service.verify.coalesced": 5},
    },
    "router": {
        "counters": {"cluster.router.forwarded": 18,
                     "cluster.router.failovers": 2,
                     "cluster.router.hedges": 4,
                     "cluster.router.hedge_wins": 1},
    },
}


class TestRenderTop:
    def test_frame_sections(self):
        frame = render_top(STATUS, METRICS, address="127.0.0.1:8745")
        lines = frame.splitlines()
        assert lines[0] == "repro top — cluster @ 127.0.0.1:8745"
        assert "workers 1/2 healthy" in lines[1]
        assert any("w0" in l and "UP" in l and "closed" in l
                   and "12.0ms" in l for l in lines)
        assert any("w1" in l and "DOWN" in l and "open" in l
                   and "restarts=3" in l for l in lines)

    def test_slo_rows(self):
        frame = render_top(STATUS, METRICS)
        assert "slo (window 300s)" in frame
        assert any("availability" in l and "MISS" in l
                   for l in frame.splitlines())
        assert any("latency_p95_500ms" in l and "OK" in l
                   for l in frame.splitlines())

    def test_admission_rows(self):
        frame = render_top(STATUS, METRICS)
        assert any("capacity=8" in l and "shed=3" in l
                   for l in frame.splitlines())
        assert any("tenant acme" in l and "usage=2/2" in l and "shed=3" in l
                   for l in frame.splitlines())

    def test_slowest_specs_from_exemplars(self):
        frame = render_top(STATUS, METRICS)
        lines = frame.splitlines()
        slow = [l for l in lines if "orders@3" in l or "claims@1" in l]
        assert len(slow) == 2
        assert lines.index(slow[0]) < lines.index(slow[1])  # slowest first
        assert "410.0ms" in slow[0] and "@w0" in slow[0]

    def test_traffic_line(self):
        frame = render_top(STATUS, METRICS)
        traffic = frame.splitlines()[-1]
        assert "forwarded=18" in traffic
        assert "failovers=2" in traffic
        assert "hedge_wins=25%" in traffic
        assert "coalesced=25%" in traffic

    def test_degenerate_payloads(self):
        frame = render_top({}, {})
        assert "(no workers)" in frame
        assert "traffic" in frame


class TestRunTop:
    def test_unreachable_router_exits_nonzero(self):
        out = io.StringIO()
        # A port from the ephemeral range with nothing bound: connection
        # refused immediately; run_top must report failure, not hang.
        assert run_top("127.0.0.1", 1, interval=0.01, iterations=1,
                       out=out, sleep=lambda s: None) == 1
