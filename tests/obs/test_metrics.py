"""Tests for the metrics registry and the percentile helper."""

import pytest

from repro.analysis.metrics import percentile
from repro.obs import MetricsRegistry


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.counter("hits").value == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("hits", -1)

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("size", 10)
        registry.set_gauge("size", 7)
        assert registry.gauge("size").value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("latency", float(value))
        summary = registry.histogram("latency").summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert 49 <= summary["p50"] <= 52
        assert 94 <= summary["p95"] <= 96
        assert 98 <= summary["p99"] <= 100

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_to_dict_and_render(self):
        registry = MetricsRegistry()
        registry.inc("engine.attempts", 4)
        registry.set_gauge("compile.arity_d", 2)
        registry.observe("latency.a", 0.5)
        data = registry.to_dict()
        assert data["counters"]["engine.attempts"] == 4
        assert data["gauges"]["compile.arity_d"] == 2
        assert data["histograms"]["latency.a"]["count"] == 1
        text = registry.render()
        assert "engine.attempts" in text
        assert "latency.a" in text
