"""Tests for the metrics registry and the percentile helper."""

import pytest

from repro.analysis.metrics import percentile
from repro.obs import MetricsRegistry


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.counter("hits").value == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("hits", -1)

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("size", 10)
        registry.set_gauge("size", 7)
        assert registry.gauge("size").value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("latency", float(value))
        summary = registry.histogram("latency").summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert 49 <= summary["p50"] <= 52
        assert 94 <= summary["p95"] <= 96
        assert 98 <= summary["p99"] <= 100

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_to_dict_and_render(self):
        registry = MetricsRegistry()
        registry.inc("engine.attempts", 4)
        registry.set_gauge("compile.arity_d", 2)
        registry.observe("latency.a", 0.5)
        data = registry.to_dict()
        assert data["counters"]["engine.attempts"] == 4
        assert data["gauges"]["compile.arity_d"] == 2
        assert data["histograms"]["latency.a"]["count"] == 1
        text = registry.render()
        assert "engine.attempts" in text
        assert "latency.a" in text


class TestPrometheusExposition:
    def test_name_sanitization(self):
        from repro.obs.metrics import prometheus_name

        assert prometheus_name("service.verify.batches") == \
            "service_verify_batches"
        assert prometheus_name("weird name!") == "weird_name_"
        assert prometheus_name("0leading") == "_0leading"
        assert prometheus_name("") == "_"
        assert prometheus_name("ok:colon_9") == "ok:colon_9"

    def test_label_value_escaping(self):
        from repro.obs.metrics import escape_label_value, format_labels

        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        rendered = format_labels({"worker": 'w"0', "zone": "a\\b"})
        assert rendered == '{worker="w\\"0",zone="a\\\\b"}'
        assert format_labels({}) == "" and format_labels(None) == ""

    def test_zero_sample_histogram_renders_count_and_sum(self):
        registry = MetricsRegistry()
        registry.histogram("empty.latency")  # created, never observed
        text = registry.render_prometheus()
        assert "# TYPE empty_latency summary\n" in text
        assert "empty_latency_count 0\n" in text
        assert "empty_latency_sum 0.0\n" in text
        assert 'quantile' not in text  # no samples, no quantile series

    def test_counters_gauges_histograms_with_labels(self):
        registry = MetricsRegistry()
        registry.inc("hits", 3)
        registry.set_gauge("depth", 2.5)
        for v in (0.1, 0.2, 0.3):
            registry.observe("lat", v)
        text = registry.render_prometheus(labels={"worker": "w0"})
        assert '# TYPE hits counter\nhits{worker="w0"} 3\n' in text
        assert '# TYPE depth gauge\ndepth{worker="w0"} 2.5\n' in text
        assert 'lat_count{worker="w0"} 3\n' in text
        assert 'lat{quantile="0.95",worker="w0"}' in text

    def test_federated_exposition(self):
        from repro.obs.metrics import (render_federated_prometheus,
                                       sum_scrapes)

        w0 = {"counters": {"hits": 2}, "gauges": {},
              "histograms": {"lat": {"count": 1, "total": 0.5, "p95": 0.5}}}
        w1 = {"counters": {"hits": 3}, "gauges": {},
              "histograms": {"lat": {"count": 2, "total": 1.0, "p95": 0.6}}}
        scrapes = {"w1": w1, "w0": w0}
        totals = sum_scrapes(scrapes)
        assert totals["counters"] == {"hits": 5}
        assert totals["histograms"]["lat"] == {"count": 3, "total": 1.5}
        assert totals["gauges"] == {}

        text = render_federated_prometheus(
            scrapes, totals, {"counters": {"routed": 7}, "gauges": {},
                              "histograms": {}}
        )
        # TYPE lines appear once (the totals section), labeled series after.
        assert text.count("# TYPE hits counter") == 1
        assert "hits 5\n" in text
        assert 'hits{worker="w0"} 2\n' in text
        assert 'hits{worker="w1"} 3\n' in text
        assert 'routed{worker="router"} 7\n' in text
        # Workers render in sorted id order.
        assert text.index('worker="w0"') < text.index('worker="w1"')

    def test_exemplars_kept_largest_first(self):
        from repro.obs.metrics import MAX_EXEMPLARS

        registry = MetricsRegistry()
        for i in range(20):
            registry.observe("lat", float(i), exemplar=f"spec{i}")
        summary = registry.histogram("lat").summary()
        exemplars = summary["exemplars"]
        assert len(exemplars) == MAX_EXEMPLARS
        assert exemplars[0] == [19.0, "spec19"]
        assert [v for v, _ in exemplars] == sorted(
            (v for v, _ in exemplars), reverse=True
        )
