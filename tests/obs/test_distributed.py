"""Cross-process trace assembly and the on-disk trace sink."""

import pytest

from repro.errors import ReproError
from repro.obs.context import IdSource, TraceContext
from repro.obs.distributed import (
    TraceSink,
    assemble,
    load_distributed_trace,
    merge_segments,
    render_distributed,
    segment_spans,
)
from repro.obs.tracer import Tracer


def make_tracer(seed: int, segment: str) -> Tracer:
    counter = iter(range(10_000))
    return Tracer(time_source=lambda: float(next(counter)),
                  ids=IdSource(seed=seed), segment=segment)


def two_process_trace():
    """A router span with a remote worker child, as two segments."""
    router = make_tracer(1, "router")
    with router.span("http.verify") as parent:
        remote_ctx = TraceContext(trace_id=parent.trace_id,
                                  span_id=parent.ref)
    worker = make_tracer(2, "w0")
    with worker.span("http.verify", ctx=remote_ctx):
        with worker.span("service.verify.batch"):
            pass
    return (segment_spans(router.spans, "router"),
            segment_spans(worker.spans, "w0"))


class TestSegments:
    def test_segment_spans_tags_every_span(self):
        tracer = make_tracer(1, "w3")
        with tracer.span("a"):
            pass
        spans = segment_spans(tracer.spans, "w3")
        assert [s["segment"] for s in spans] == ["w3"]
        assert spans[0]["name"] == "a" and spans[0]["ref"]

    def test_merge_deduplicates_on_segment_and_ref(self):
        router_seg, worker_seg = two_process_trace()
        merged = merge_segments(router_seg, worker_seg, worker_seg)
        assert len(merged) == len(router_seg) + len(worker_seg)

    def test_same_ref_in_different_segments_is_kept(self):
        # Identical seeds mint identical refs; distinct segments must
        # still both survive the merge.
        a = make_tracer(5, "w0")
        b = make_tracer(5, "w1")
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        merged = merge_segments(segment_spans(a.spans, "w0"),
                                segment_spans(b.spans, "w1"))
        assert len(merged) == 2


class TestAssemble:
    def test_cross_process_parentage(self):
        router_seg, worker_seg = two_process_trace()
        roots = assemble(merge_segments(router_seg, worker_seg))
        assert len(roots) == 1
        root = roots[0]
        assert root["segment"] == "router"
        assert [c["segment"] for c in root["children"]] == ["w0"]
        grandchildren = root["children"][0]["children"]
        assert [g["name"] for g in grandchildren] == ["service.verify.batch"]

    def test_missing_parent_degrades_to_forest(self):
        _, worker_seg = two_process_trace()
        roots = assemble(worker_seg)  # router segment never arrived
        assert len(roots) == 1
        assert roots[0]["segment"] == "w0"

    def test_sibling_order_is_deterministic(self):
        router = make_tracer(1, "router")
        with router.span("parent") as parent:
            ctx = TraceContext(trace_id=parent.trace_id, span_id=parent.ref)
        segs = [segment_spans(router.spans, "router")]
        for i in (1, 0):  # build out of order on purpose
            worker = make_tracer(10 + i, f"w{i}")
            with worker.span("child", ctx=ctx):
                pass
            segs.append(segment_spans(worker.spans, f"w{i}"))
        roots = assemble(merge_segments(*segs))
        assert [c["segment"] for c in roots[0]["children"]] == ["w0", "w1"]


class TestRender:
    def test_render_shows_segments_and_nesting(self):
        router_seg, worker_seg = two_process_trace()
        text = render_distributed(merge_segments(router_seg, worker_seg))
        lines = text.splitlines()
        assert lines[0].startswith("http.verify @router")
        assert lines[1].startswith("  http.verify @w0")
        assert lines[2].startswith("    service.verify.batch @w0")

    def test_render_empty(self):
        assert render_distributed([]) == "(no spans)"


class TestTraceSink:
    def test_write_read_roundtrip(self, tmp_path):
        sink = TraceSink(tmp_path)
        router_seg, worker_seg = two_process_trace()
        spans = merge_segments(router_seg, worker_seg)
        trace_id = spans[0]["trace_id"]
        path = sink.write(trace_id, spans)
        assert path.name == f"{trace_id}.trace.jsonl"
        assert sink.read(trace_id) == spans
        assert load_distributed_trace(path) == spans
        assert sink.trace_ids() == [trace_id]

    def test_eviction_keeps_newest(self, tmp_path):
        import os

        sink = TraceSink(tmp_path, max_traces=2)
        ids = [f"{i:032x}" for i in range(1, 4)]
        for i, trace_id in enumerate(ids):
            path = sink.write(trace_id, [{"name": "x"}])
            os.utime(path, (i, i))  # deterministic mtime ordering
        sink._evict()
        assert sink.trace_ids() == ids[1:]

    def test_invalid_trace_id_rejected(self, tmp_path):
        sink = TraceSink(tmp_path)
        for bad in ["", "../evil", "ABC", "xyz"]:
            with pytest.raises(ReproError):
                sink.write(bad, [])

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(ReproError):
            TraceSink(tmp_path).read("ab" * 16)
