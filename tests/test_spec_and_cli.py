"""Tests for the specification-file format and the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.ctr.formulas import atoms
from repro.errors import ParseError
from repro.spec import parse_specification

A, B, C = atoms("a b c")

SPEC = """\
# demo workflow
goal: start * (pay | pack) * ship

constraint: precedes(pay, ship)

property paid_before_shipping: precedes(pay, ship)
property never_refund: never(refund)
property pack_first: precedes(pack, pay)
"""

INCONSISTENT = """\
goal: a * b
constraint: precedes(b, a)
"""

WITH_RULES = """\
goal: prepare * main_course
rule main_course: cook * plate
rule main_course: order_in
constraint: happens(cook) or happens(order_in)
"""


class TestSpecificationParsing:
    def test_basic(self):
        spec = parse_specification(SPEC)
        assert len(spec.constraints) == 1
        assert len(spec.properties) == 3
        assert spec.rules is None

    def test_rules(self):
        spec = parse_specification(WITH_RULES)
        assert spec.rules is not None
        assert spec.rules.heads == {"main_course"}
        assert len(spec.rules.bodies("main_course")) == 2

    def test_compile(self):
        compiled = parse_specification(SPEC).compile()
        assert compiled.consistent

    def test_missing_goal(self):
        with pytest.raises(ParseError):
            parse_specification("constraint: happens(a)")

    def test_duplicate_goal(self):
        with pytest.raises(ParseError):
            parse_specification("goal: a\ngoal: b")

    def test_unknown_keyword(self):
        with pytest.raises(ParseError) as info:
            parse_specification("goal: a\nwibble: b")
        assert "line 2" in str(info.value)

    def test_comments_and_blanks_ignored(self):
        spec = parse_specification("# intro\n\ngoal: a\n  # trailing\n")
        assert spec.goal == A


@pytest.fixture
def spec_file(tmp_path):
    def write(content):
        path = tmp_path / "flow.workflow"
        path.write_text(content)
        return str(path)

    return write


def run_cli(args):
    out = io.StringIO()
    status = main(args, out=out)
    return status, out.getvalue()


class TestCli:
    def test_check_consistent(self, spec_file):
        status, output = run_cli(["check", spec_file(SPEC)])
        assert status == 0
        assert "consistent: True" in output

    def test_check_inconsistent(self, spec_file):
        status, output = run_cli(["check", spec_file(INCONSISTENT)])
        assert status == 1
        assert "consistent: False" in output

    def test_schedules(self, spec_file):
        status, output = run_cli(["schedules", spec_file(SPEC), "--limit", "10"])
        assert status == 0
        assert "start -> pay -> pack -> ship" in output

    def test_schedules_inconsistent(self, spec_file):
        status, output = run_cli(["schedules", spec_file(INCONSISTENT)])
        assert status == 1

    def test_verify_reports_failures(self, spec_file):
        status, output = run_cli(["verify", spec_file(SPEC)])
        assert status == 1  # pack_first fails
        assert "[HOLDS] paid_before_shipping" in output
        assert "[FAILS] pack_first" in output
        assert "witness:" in output

    def test_verify_without_properties(self, spec_file):
        status, output = run_cli(["verify", spec_file(INCONSISTENT)])
        assert status == 0
        assert "no properties" in output

    def test_run(self, spec_file):
        status, output = run_cli(["run", spec_file(SPEC)])
        assert status == 0
        assert output.strip().startswith("start")

    def test_show(self, spec_file):
        status, output = run_cli(["show", spec_file(WITH_RULES)])
        assert status == 0
        assert "compiled:" in output and "cook" in output

    def test_missing_file(self, capsys):
        status = main(["check", "/nonexistent/spec"])
        assert status == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_is_reported(self, spec_file, capsys):
        status = main(["check", spec_file("goal: ???")])
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestCliDot:
    def test_dot_output(self, spec_file):
        status, output = run_cli(["dot", spec_file(SPEC)])
        assert status == 0
        assert output.startswith("digraph")
        assert '"pay"' in output or 'label="pay"' in output


CHOICE_SPEC = """\
goal: receive * (approve + reject) * archive
"""


class TestCliTrace:
    def test_run_records_and_replay_verifies(self, spec_file, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        status, output = run_cli(
            ["run", spec_file(CHOICE_SPEC), "--trace", trace]
        )
        assert status == 0
        assert f"trace written to {trace}" in output

        status, output = run_cli(["trace", "replay", trace])
        assert status == 0
        assert "replay ok" in output

    def test_run_metrics_prints_registry(self, spec_file):
        status, output = run_cli(["run", spec_file(CHOICE_SPEC), "--metrics"])
        assert status == 0
        assert "compile.thm511_ratio" in output
        assert "latency.receive" in output

    def test_trace_record_equals_run_trace(self, spec_file, tmp_path):
        trace = str(tmp_path / "rec.jsonl")
        status, _ = run_cli(["trace", "record", spec_file(CHOICE_SPEC), trace])
        assert status == 0

        status, output = run_cli(["trace", "show", trace])
        assert status == 0
        assert "flight recorder" in output
        assert "engine.run" in output

    def test_trace_replay_under_chaos(self, spec_file, tmp_path):
        trace = str(tmp_path / "chaos.jsonl")
        status, output = run_cli([
            "run", spec_file(CHOICE_SPEC), "--trace", trace,
            "--fail", "approve", "--retry", "2", "--backoff", "0.1",
        ])
        assert status == 0
        assert "reroute" in output

        status, output = run_cli(["trace", "replay", trace])
        assert status == 0
        assert "replay ok" in output

    def test_trace_diff(self, spec_file, tmp_path):
        first = str(tmp_path / "first.jsonl")
        second = str(tmp_path / "second.jsonl")
        spec = spec_file(CHOICE_SPEC)
        run_cli(["run", spec, "--trace", first])
        run_cli(["run", spec, "--trace", second, "--fail", "approve"])

        status, output = run_cli(["trace", "diff", first, first])
        assert status == 0
        assert "equivalent" in output

        status, output = run_cli(["trace", "diff", first, second])
        assert status == 1
        assert "schedule differs" in output
