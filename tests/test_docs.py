"""Executable documentation: the tutorial's code blocks must actually run.

Extracts every ```python fenced block from docs/tutorial.md and executes
them in order in one shared namespace, asserting that the printed claims
(True/False annotations in the comments) are honoured where they are easy
to check programmatically.
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "tutorial.md"
README = Path(__file__).parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text(encoding="utf-8"))


class TestTutorial:
    def test_blocks_exist(self):
        assert len(python_blocks(TUTORIAL)) >= 8

    def test_blocks_execute_in_order(self):
        namespace: dict = {}
        buffer = io.StringIO()
        for i, block in enumerate(python_blocks(TUTORIAL)):
            with redirect_stdout(buffer):
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        output = buffer.getvalue()
        # Spot-check the tutorial's narrated outcomes.
        assert "True" in output     # consistency + property holds
        assert "False" in output    # the inconsistent policy / failed property

    def test_tutorial_state_is_sensible(self):
        namespace: dict = {}
        with redirect_stdout(io.StringIO()):
            for i, block in enumerate(python_blocks(TUTORIAL)):
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        compiled = namespace["compiled"]
        assert compiled.consistent
        report = namespace["report"]
        assert report.completed
        assert report.database.query("ledger") == [(42, 10_000)]


class TestReadme:
    def test_readme_quickstart_runs(self):
        blocks = python_blocks(README)
        assert blocks, "README must contain python examples"
        namespace: dict = {}
        with redirect_stdout(io.StringIO()):
            for i, block in enumerate(blocks):
                exec(compile(block, f"<readme block {i}>", "exec"), namespace)

    def test_readme_mentions_the_deliverables(self):
        text = README.read_text(encoding="utf-8")
        for anchor in ("DESIGN.md", "EXPERIMENTS.md", "examples/", "benchmarks/"):
            assert anchor in text
