"""Tests for hash-consing: interning, identity, pickling, and GC behavior."""

import copy
import gc
import pickle

import pytest
from hypothesis import given, settings

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Choice,
    Concurrent,
    Isolated,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    atoms,
    dag_size,
    goal_size,
    intern_table_size,
    interning,
    interning_enabled,
    par,
    seq,
    set_interning,
    sharing_ratio,
)
from repro.ctr.simplify import simplify
from tests.conftest import unique_event_goals

A, B, C = atoms("a b c")


class TestCanonicalIdentity:
    def test_equal_atoms_are_the_same_object(self):
        assert Atom("pay") is Atom("pay")

    def test_equal_composites_are_the_same_object(self):
        assert (A >> B) is (A >> B)
        assert par(A, B) is par(A, B)
        assert alt(A, B) is alt(A, B)
        assert Isolated(A >> B) is Isolated(A >> B)
        assert Possibility(A) is Possibility(A)
        assert Send("xi1") is Send("xi1")
        assert Receive("xi1") is Receive("xi1")
        assert Test("ok") is Test("ok")

    def test_different_structures_are_different(self):
        assert Atom("a") is not Atom("b")
        assert seq(A, B) is not seq(B, A)
        assert seq(A, B) is not par(A, B)

    def test_sentinels_are_singletons(self):
        assert PATH is type(PATH)()
        assert NEG_PATH is type(NEG_PATH)()
        assert EMPTY is type(EMPTY)()

    def test_structural_equality_implies_identity(self):
        left = seq(par(A, B), alt(A >> B, C))
        right = seq(par(A, B), alt(A >> B, C))
        assert left == right
        assert left is right
        assert hash(left) == hash(right)

    def test_shared_subterms_collapse(self):
        shared = A >> B
        goal = alt(seq(shared, C), par(shared, C))
        assert dag_size(goal) < goal_size(goal)
        assert sharing_ratio(goal) > 1.0

    def test_copy_and_deepcopy_return_self(self):
        goal = seq(par(A, B), C)
        assert copy.copy(goal) is goal
        assert copy.deepcopy(goal) is goal

    def test_nodes_are_frozen(self):
        goal = A >> B
        with pytest.raises(Exception):
            goal.parts = ()
        with pytest.raises(Exception):
            del goal.parts
        with pytest.raises(Exception):
            A.name = "z"


class TestInterningToggle:
    def test_disabled_constructors_allocate_fresh(self):
        with interning(False):
            assert not interning_enabled()
            one, two = Atom("toggled"), Atom("toggled")
            assert one == two
            assert one is not two
        assert interning_enabled()

    def test_off_and_on_goals_are_structurally_equal(self):
        with interning(False):
            plain = seq(par(A, B), alt(A >> B, C))
        interned = seq(par(A, B), alt(A >> B, C))
        assert plain == interned
        assert hash(plain) == hash(interned)

    def test_set_interning_returns_previous(self):
        assert set_interning(False) is True
        try:
            assert set_interning(False) is False
        finally:
            set_interning(True)

    def test_uninterned_goals_work_in_interned_composites(self):
        with interning(False):
            leaf = Atom("mixed")
        goal = seq(leaf, B)
        assert goal == seq(Atom("mixed"), B)


class TestPickling:
    def test_pickle_round_trip_reinterns(self):
        goal = seq(par(A, B), alt(A >> B, C), Send("xi1"), Receive("xi1"))
        clone = pickle.loads(pickle.dumps(goal))
        assert clone is goal

    def test_pickle_preserves_sharing(self):
        shared = par(A, B)
        goal = alt(seq(shared, C), seq(C, shared))
        clone = pickle.loads(pickle.dumps(goal))
        assert clone is goal
        assert dag_size(clone) == dag_size(goal)

    def test_predicated_test_pickles_without_predicate(self):
        probe = Test("guard", predicate=lambda db: True)
        clone = pickle.loads(pickle.dumps(probe))
        assert clone == probe
        assert clone.predicate is None


class TestWeakTable:
    def test_unreferenced_goals_are_collected(self):
        def build():
            return seq(Atom("gc_only_1"), Atom("gc_only_2"), Atom("gc_only_3"))

        goal = build()
        gc.collect()
        before = intern_table_size()
        del goal
        gc.collect()
        assert intern_table_size() < before

    def test_live_goals_stay_canonical(self):
        goal = seq(Atom("kept_1"), Atom("kept_2"))
        gc.collect()
        assert seq(Atom("kept_1"), Atom("kept_2")) is goal


class TestReprClipping:
    def test_small_goal_repr_is_full(self):
        assert "a" in repr(A >> B) and "b" in repr(A >> B)

    def test_huge_goal_repr_is_bounded(self):
        goal = alt(*(Atom(f"wide{i}") for i in range(200)))
        for _ in range(12):
            goal = alt(seq(goal, Atom("x0")), par(goal, Atom("y0")))
        text = repr(goal)
        assert len(text) < 1000
        assert "…" in text

    def test_deep_goal_repr_is_bounded(self):
        goal = Atom("deep")
        for i in range(64):
            goal = Isolated(alt(goal, Atom(f"d{i}")))
        assert len(repr(goal)) < 1000


class TestSimplifyFixpoints:
    @settings(max_examples=80, deadline=None)
    @given(unique_event_goals(max_events=5))
    def test_interning_preserves_simplify_fixpoints(self, goal):
        interned = simplify(goal)
        # Idempotence: a simplified interned goal is its own fixpoint.
        assert simplify(interned) is interned
        # The same simplification with interning off is structurally equal:
        # hash-consing changes representation, never results.
        with interning(False):
            plain = simplify(goal)
        assert plain == interned

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_pickle_round_trip_of_simplified_goal(self, goal):
        interned = simplify(goal)
        assert pickle.loads(pickle.dumps(interned)) is interned


class TestRawConstructorValidation:
    def test_serial_requires_two_parts(self):
        with pytest.raises(ValueError):
            Serial((A,))

    def test_concurrent_requires_two_parts(self):
        with pytest.raises(ValueError):
            Concurrent(())

    def test_choice_requires_two_parts(self):
        with pytest.raises(ValueError):
            Choice((A,))


class TestStructuralEqualityWithoutInterning:
    """Equality/hash must stay structural — and iterative — when interning
    is off: set/dict membership, the pass-level caches, and ``alt()``'s
    dedup all rely on it (the regression behind the `interning(False)`
    seam)."""

    def test_membership_across_distinct_objects(self):
        with interning(False):
            a1, a2 = Atom("a"), Atom("a")
            assert a1 is not a2
            assert a1 == a2 and hash(a1) == hash(a2)
            assert a2 in {a1}
            assert {a1: 1}[a2] == 1

    def test_event_names_unaffected_by_duplicates(self):
        from repro.ctr.formulas import event_names

        with interning(False):
            goal = seq(Atom("a"), par(Atom("b"), Atom("a")))
            assert event_names(goal) == frozenset({"a", "b"})

    def test_alt_dedups_structural_duplicates(self):
        with interning(False):
            g = alt(seq(Atom("a"), Atom("b")), seq(Atom("a"), Atom("b")))
            assert not isinstance(g, Choice)  # collapsed to one branch

    def test_deep_goals_compare_without_recursion_error(self):
        # Regression: __eq__/__hash__ used to recurse one Python frame per
        # AST level, so structurally equal non-interned goals a few hundred
        # nodes deep raised RecursionError instead of comparing.
        def deep(n, name):
            g = Atom(name)
            for _ in range(n):
                g = Possibility(Isolated(g))
            return g

        with interning(False):
            g1, g2 = deep(2000, "a"), deep(2000, "a")
            assert g1 is not g2
            assert g1 == g2
            assert hash(g1) == hash(g2)
            assert g1 != deep(2000, "b")

    def test_cross_mode_equality(self):
        # A canonical node and a non-interned twin are interchangeable.
        canonical = seq(A, B)
        with interning(False):
            twin = seq(Atom("a"), Atom("b"))
        assert canonical is not twin
        assert canonical == twin
        assert twin in {canonical}

    def test_toggling_mid_pipeline_compiles_identically(self):
        # The scenario from the issue: flip the context manager in the
        # middle of a compile pipeline and the answers must not change.
        from repro.constraints.algebra import order
        from repro.core.compiler import compile_workflow
        from repro.ctr.traces import traces

        goal = par(A, B) >> C
        constraints = [order("a", "b")]
        reference = compile_workflow(goal, constraints)
        with interning(False):
            goal_off = par(Atom("a"), Atom("b")) >> Atom("c")
            compiled_off = compile_workflow(goal_off, [order("a", "b")])
        assert compiled_off.consistent == reference.consistent
        assert traces(compiled_off.goal) == traces(reference.goal)
