"""Edge-case tests for the machine's internal residual representations."""

from repro.ctr.formulas import Isolated, Receive, Send, atoms, seq
from repro.ctr.machine import Config, Machine, Tail, machine_traces
from repro.ctr.traces import traces
from repro.graph.generators import serial_chain

A, B, C, D = atoms("a b c d")


class TestTailRepresentation:
    def test_tail_equality_is_identity_on_parts(self):
        shared = (A, B, C)
        assert Tail(shared, 1) == Tail(shared, 1)
        assert Tail(shared, 1) != Tail(shared, 2)
        # Equal-content but distinct tuples: deliberately unequal (the
        # machine only ever compares Tails over shared tuples).
        assert Tail((A, B, C), 1) != Tail((A, B, C), 1) or (A, B, C) is (A, B, C)

    def test_tail_hash_consistent_with_eq(self):
        shared = (A, B, C)
        assert hash(Tail(shared, 1)) == hash(Tail(shared, 1))

    def test_long_chain_steps_through_tails(self):
        goal = serial_chain(50)
        machine = Machine(goal)
        config = machine.initial()
        for i in range(1, 51):
            successors = machine.successors(config)
            assert sorted(successors) == [f"e{i}"]
            (config,) = successors[f"e{i}"]
        assert machine.is_final(config)

    def test_tail_with_composite_head_mid_chain(self):
        # Stepping into a composite head must still produce correct residuals.
        goal = seq(A, (B | C), D)
        assert machine_traces(goal) == traces(goal)

    def test_tail_inside_choice_worlds(self):
        goal = seq(A, B, C) + seq(A, C, B)
        assert machine_traces(goal) == traces(goal)


class TestSilentChains:
    def test_long_silent_prefix(self):
        goal = seq(Send("t1"), Send("t2"), Receive("t1"), Receive("t2"), A)
        assert machine_traces(goal) == {("a",)}

    def test_interleaved_send_receive_ladder(self):
        # t1 -> t2 -> t3 ladder across three branches.
        left = seq(A, Send("t1"))
        middle = seq(Receive("t1"), B, Send("t2"))
        right = seq(Receive("t2"), C)
        goal = left | middle | right
        assert machine_traces(goal) == {("a", "b", "c")}

    def test_tokens_inside_isolated_region(self):
        goal = Isolated(seq(Send("t"), A, Receive("t"), B)) | C
        got = machine_traces(goal)
        assert got == traces(goal)
        assert ("a", "b", "c") in got and ("c", "a", "b") in got


class TestConfigSets:
    def test_successors_merge_duplicate_targets(self):
        # Two silent paths leading to the same configuration collapse.
        goal = seq(Send("t"), A) + seq(Send("t"), A)
        machine = Machine(goal)
        successors = machine.successors(machine.initial())
        assert set(successors) == {"a"}
        assert len(successors["a"]) == 1

    def test_config_distinguished_by_tokens(self):
        c1 = Config(A, frozenset())
        c2 = Config(A, frozenset({"t"}))
        assert len({c1, c2}) == 2
