"""Tests for the pretty printers."""

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    atoms,
)
from repro.ctr.pretty import pretty, pretty_tree, pretty_unicode

A, B, C, D = atoms("a b c d")


class TestAscii:
    def test_serial(self):
        assert pretty(A >> B >> C) == "a * b * c"

    def test_minimal_parentheses(self):
        assert pretty(A >> (B + C)) == "a * (b + c)"
        assert pretty((A >> B) + C) == "a * b + c"

    def test_concurrent_precedence(self):
        assert pretty((A | B) >> C) == "(a | b) * c"
        assert pretty(A | (B >> C)) == "a | b * c"

    def test_choice_is_loosest(self):
        assert pretty((A | B) + C) == "a | b + c"
        assert pretty(A | (B + C)) == "a | (b + c)"

    def test_specials(self):
        assert pretty(NEG_PATH) == "fail"
        assert pretty(PATH) == "path"
        assert pretty(EMPTY) == "()"
        assert pretty(Send("t")) == "send(t)"
        assert pretty(Receive("t")) == "receive(t)"
        assert pretty(Test("cond")) == "cond?"

    def test_modalities(self):
        assert pretty(Isolated(A >> B)) == "[a * b]"
        assert pretty(Possibility(A + B)) == "<a + b>"


class TestUnicode:
    def test_paper_notation(self):
        assert pretty_unicode(A >> (B + C)) == "a ⊗ (b ∨ c)"
        assert pretty_unicode(NEG_PATH) == "¬path"
        assert pretty_unicode(EMPTY) == "ε"


class TestTree:
    def test_tree_rendering(self):
        text = pretty_tree(A >> (B | Send("t")))
        lines = text.splitlines()
        assert lines[0] == "Serial"
        assert "  Atom a" in lines
        assert "  Concurrent" in lines
        assert "    Send t" in lines
