"""Tests for concurrent-Horn rules and sub-workflow expansion."""

import pytest

from repro.ctr.formulas import Atom, Choice, atoms
from repro.ctr.rules import Rule, RuleBase
from repro.ctr.traces import traces
from repro.errors import RecursionError_, SpecificationError

A, B, C, D = atoms("a b c d")


class TestExpansion:
    def test_single_rule(self):
        rb = RuleBase([Rule("sub", A >> B)])
        assert rb.expand(Atom("sub") >> C) == A >> B >> C

    def test_multiple_bodies_become_choice(self):
        rb = RuleBase([Rule("sub", A), Rule("sub", B)])
        assert rb.expand(Atom("sub")) == Choice((A, B))

    def test_nested_expansion(self):
        rb = RuleBase([Rule("outer", Atom("inner") >> C), Rule("inner", A | B)])
        assert rb.expand(Atom("outer")) == (A | B) >> C

    def test_expansion_preserves_semantics(self):
        rb = RuleBase([Rule("sub", A + B)])
        goal = Atom("sub") >> C
        assert traces(rb.expand(goal)) == {("a", "c"), ("b", "c")}

    def test_unrelated_atoms_untouched(self):
        rb = RuleBase([Rule("sub", A)])
        assert rb.expand(C >> D) == C >> D

    def test_definition_accessor(self):
        rb = RuleBase([Rule("sub", A), Rule("sub", B)])
        assert rb.definition("sub") == Choice((A, B))
        with pytest.raises(SpecificationError):
            rb.definition("nope")

    def test_heads_and_bodies(self):
        rb = RuleBase([Rule("x", A), Rule("y", B)])
        assert rb.heads == frozenset({"x", "y"})
        assert rb.bodies("x") == (A,)


class TestRecursionDetection:
    def test_direct_recursion(self):
        with pytest.raises(RecursionError_):
            RuleBase([Rule("w", Atom("w") >> A)])

    def test_mutual_recursion(self):
        with pytest.raises(RecursionError_) as info:
            RuleBase([Rule("x", Atom("y")), Rule("y", Atom("x"))])
        assert "x" in info.value.cycle and "y" in info.value.cycle

    def test_add_rolls_back_on_recursion(self):
        rb = RuleBase([Rule("x", A)])
        with pytest.raises(RecursionError_):
            rb.add(Rule("x", Atom("x")))
        # The failed rule was not kept.
        assert rb.bodies("x") == (A,)

    def test_recursion_through_choice(self):
        with pytest.raises(RecursionError_):
            RuleBase([Rule("w", A + (Atom("w") >> B))])

    def test_dag_of_rules_is_fine(self):
        rb = RuleBase(
            [
                Rule("top", Atom("mid1") >> Atom("mid2")),
                Rule("mid1", Atom("leaf")),
                Rule("mid2", Atom("leaf2")),
                Rule("leaf", A),
                Rule("leaf2", B),
            ]
        )
        assert rb.expand(Atom("top")) == A >> B


class TestValidation:
    def test_empty_head_rejected(self):
        with pytest.raises(SpecificationError):
            Rule("", A)
