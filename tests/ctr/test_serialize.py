"""Tests for JSON serialization of goals, constraints, and rules."""

import json

import pytest
from hypothesis import given

from repro.constraints.algebra import conj, disj, must, order, serial
from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    atoms,
)
from repro.ctr.rules import Rule, RuleBase
from repro.ctr.serialize import (
    constraint_from_dict,
    constraint_to_dict,
    goal_from_dict,
    goal_from_shared_dict,
    goal_to_dict,
    goal_to_shared_dict,
    goals_from_shared_dict,
    goals_to_shared_dict,
    rules_from_dict,
    rules_to_dict,
    specification_from_dict,
    specification_to_dict,
)
from repro.errors import SpecificationError
from tests.conftest import constraints_over, unique_event_goals

A, B, C = atoms("a b c")


def json_round_trip(data):
    return json.loads(json.dumps(data))


class TestGoals:
    @given(unique_event_goals(max_events=6))
    def test_round_trip(self, goal):
        assert goal_from_dict(json_round_trip(goal_to_dict(goal))) == goal

    def test_special_nodes(self):
        goal = Isolated(A >> Send("t")) | (Receive("t") >> Possibility(B) >> Test("c"))
        assert goal_from_dict(goal_to_dict(goal)) == goal

    def test_sentinels(self):
        for sentinel in (EMPTY, PATH, NEG_PATH):
            assert goal_from_dict(goal_to_dict(sentinel)) == sentinel

    def test_test_predicate_dropped(self):
        goal = Test("cond", predicate=lambda db: True)
        loaded = goal_from_dict(goal_to_dict(goal))
        assert loaded == Test("cond")
        assert loaded.predicate is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            goal_from_dict({"kind": "quantum"})


class TestSharedEncoding:
    @given(unique_event_goals(max_events=6))
    def test_round_trip_is_canonical_identity(self, goal):
        # Not just equality: decoding re-interns, so the loaded goal IS
        # the canonical node for its structure.
        assert goal_from_shared_dict(json_round_trip(goal_to_shared_dict(goal))) is goal

    def test_shared_subterms_are_encoded_once(self):
        from repro.ctr.formulas import alt, dag_size, par, seq

        shared = par(A, B)
        goal = alt(seq(shared, C), seq(C, shared), Isolated(shared))
        data = goal_to_shared_dict(goal)
        assert len(data["nodes"]) == dag_size(goal)
        loaded = goal_from_shared_dict(json_round_trip(data))
        assert loaded is goal
        assert dag_size(loaded) == dag_size(goal)

    def test_tree_encoding_expands_what_shared_does_not(self):
        from repro.ctr.formulas import alt, par

        shared = A >> B
        goal = alt(*(par(shared, atoms(f"x{i}")[0]) for i in range(8)))
        tree = json.dumps(goal_to_dict(goal))
        dag = json.dumps(goal_to_shared_dict(goal))
        assert tree.count('"kind": "serial"') > dag.count('"kind": "serial"')

    def test_special_nodes(self):
        goal = Isolated(A >> Send("t")) | (Receive("t") >> Possibility(B) >> Test("c"))
        assert goal_from_shared_dict(goal_to_shared_dict(goal)) is goal

    def test_multi_root_table_shares_between_goals(self):
        from repro.ctr.formulas import par, seq

        one = seq(par(A, B), C)
        two = par(par(A, B), C)
        data = goals_to_shared_dict({"one": one, "two": two})
        names = {n.get("name") for n in data["nodes"]}
        assert {"a", "b", "c"} <= names
        assert len(data["nodes"]) == 6  # a, b, c, par(a,b) shared, + 2 roots
        loaded = goals_from_shared_dict(json_round_trip(data))
        assert loaded["one"] is one
        assert loaded["two"] is two

    def test_dangling_reference_rejected(self):
        with pytest.raises(SpecificationError):
            goal_from_shared_dict({"nodes": [{"kind": "atom", "name": "a"}],
                                   "root": 5})

    def test_forward_reference_rejected(self):
        with pytest.raises(SpecificationError):
            goal_from_shared_dict({
                "nodes": [{"kind": "serial", "parts": [1, 2]},
                          {"kind": "atom", "name": "a"},
                          {"kind": "atom", "name": "b"}],
                "root": 0,
            })

    def test_malformed_parts_rejected(self):
        with pytest.raises(SpecificationError):
            goal_from_shared_dict({
                "nodes": [{"kind": "atom", "name": "a"},
                          {"kind": "choice", "parts": ["zero", 0]}],
                "root": 1,
            })


class TestConstraints:
    @given(constraints_over(("a", "b", "c", "d")))
    def test_round_trip(self, constraint):
        assert constraint_from_dict(json_round_trip(constraint_to_dict(constraint))) == constraint

    def test_nested(self):
        c = disj(conj(must("a"), order("b", "c")), serial("a", "b", "c"))
        assert constraint_from_dict(constraint_to_dict(c)) == c

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            constraint_from_dict({"kind": "modal"})


class TestRulesAndSpecifications:
    def test_rules_round_trip(self):
        rules = RuleBase([Rule("sub", A + B), Rule("sub", C), Rule("other", A >> B)])
        loaded = rules_from_dict(json_round_trip(rules_to_dict(rules)))
        assert loaded.heads == rules.heads
        assert loaded.bodies("sub") == rules.bodies("sub")

    def test_specification_round_trip(self):
        rules = RuleBase([Rule("sub", B + C)])
        goal = A >> atoms("sub")[0]
        constraints = [must("a"), order("b", "c")]
        data = json_round_trip(specification_to_dict(goal, constraints, rules))
        loaded_goal, loaded_constraints, loaded_rules = specification_from_dict(data)
        assert loaded_goal == goal
        assert loaded_constraints == constraints
        assert loaded_rules is not None and loaded_rules.heads == {"sub"}

    def test_specification_without_rules(self):
        data = specification_to_dict(A >> B, [must("a")])
        assert "rules" not in data
        _goal, _constraints, rules = specification_from_dict(json_round_trip(data))
        assert rules is None
