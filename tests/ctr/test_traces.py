"""Tests for the enumerable trace semantics (the testing oracle itself)."""

import pytest
from hypothesis import given, settings

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    atoms,
)
from repro.ctr.machine import machine_traces
from repro.ctr.traces import TooManyTracesError, count_traces, is_executable, traces
from repro.errors import SpecificationError
from tests.conftest import unique_event_goals

A, B, C, D = atoms("a b c d")


class TestConnectives:
    def test_atom(self):
        assert traces(A) == {("a",)}

    def test_serial_concatenates(self):
        assert traces(A >> B >> C) == {("a", "b", "c")}

    def test_choice_unions(self):
        assert traces(A + B) == {("a",), ("b",)}

    def test_concurrent_shuffles(self):
        assert traces(A | B) == {("a", "b"), ("b", "a")}

    def test_three_way_shuffle_count(self):
        assert count_traces(A | B | C) == 6

    def test_shuffle_of_chains(self):
        got = traces((A >> B) | C)
        assert got == {("a", "b", "c"), ("a", "c", "b"), ("c", "a", "b")}

    def test_empty_goal(self):
        assert traces(EMPTY) == {()}

    def test_neg_path_has_no_traces(self):
        assert traces(NEG_PATH) == frozenset()
        assert not is_executable(NEG_PATH)

    def test_path_is_rejected(self):
        with pytest.raises(SpecificationError):
            traces(PATH)


class TestIsolation:
    def test_isolated_block_is_contiguous(self):
        got = traces(Isolated(A >> B) | C)
        assert got == {("a", "b", "c"), ("c", "a", "b")}
        assert ("a", "c", "b") not in got

    def test_isolated_single_step_is_transparent(self):
        assert traces(Isolated(A) | B) == traces(A | B)

    def test_nested_isolation(self):
        got = traces(Isolated(Isolated(A >> B) >> C) | D)
        # the whole outer block is contiguous
        assert ("a", "b", "d", "c") not in got
        assert ("a", "b", "c", "d") in got
        assert ("d", "a", "b", "c") in got


class TestCommunication:
    def test_send_receive_orders_branches(self):
        goal = (A >> Send("t")) | (Receive("t") >> B)
        assert traces(goal) == {("a", "b")}

    def test_unmatched_receive_deadlocks(self):
        assert traces(Receive("t") >> A) == frozenset()

    def test_unmatched_send_is_harmless(self):
        assert traces(Send("t") >> A) == {("a",)}

    def test_cross_knot_has_no_traces(self):
        goal = (Receive("x") >> A >> Send("y")) | (Receive("y") >> B >> Send("x"))
        assert traces(goal) == frozenset()

    def test_tokens_are_projected_out(self):
        goal = Send("t") >> A >> Receive("t")
        assert traces(goal) == {("a",)}


class TestPossibilityAndTests:
    def test_possibility_consumes_nothing(self):
        assert traces(Possibility(A) >> B) == {("b",)}

    def test_impossible_possibility_kills_execution(self):
        assert traces(Possibility(NEG_PATH) >> B) == frozenset()

    def test_possibility_of_deadlock_kills_execution(self):
        assert traces(Possibility(Receive("nope")) >> B) == frozenset()

    def test_test_is_transparent_statically(self):
        assert traces(Test("cond") >> A) == {("a",)}


class TestBudget:
    def test_budget_exceeded_raises(self):
        wide = atoms([f"w{i}" for i in range(8)])
        goal = wide[0]
        for w in wide[1:]:
            goal = goal | w
        with pytest.raises(TooManyTracesError):
            traces(goal, max_traces=10)

    def test_count_traces(self):
        assert count_traces(A + B + C) == 3


class TestMachineAgreement:
    """The step-semantics machine and the denotational traces must agree."""

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=5))
    def test_machine_equals_traces(self, goal):
        assert machine_traces(goal) == traces(goal)

    def test_agreement_with_tokens(self):
        goal = (A >> Send("t")) | (Receive("t") >> B) | C
        assert machine_traces(goal) == traces(goal)

    def test_agreement_with_isolation(self):
        goal = Isolated(A >> B) | (C >> D)
        assert machine_traces(goal) == traces(goal)


def _parallel_chains(chains: int, length: int):
    """``chains`` disjoint serial chains of ``length`` events, in parallel."""
    from repro.ctr.formulas import par, seq

    return par(*[
        seq(*atoms(" ".join(f"c{i}e{j}" for j in range(length))))
        for i in range(chains)
    ])


class TestLazyEnumeration:
    """Regression: budget-bounded questions must answer, not raise.

    ``is_executable``/``count_traces`` used to enumerate the full trace
    set eagerly and propagate :class:`TooManyTracesError` once a wide
    goal's interleavings outgrew the budget — even though one valid trace
    (existence) or the traces seen so far (a lower bound) already answer
    the question asked.
    """

    # 6 chains of 4 events: multinomial(24; 4,4,4,4,4,4) ≈ 10^15
    # interleavings — hopeless to enumerate, trivial to answer about.
    WIDE = staticmethod(lambda: _parallel_chains(6, 4))

    def test_is_executable_short_circuits_on_wide_goal(self):
        # Note: the *eager* traces() cannot even fail fast here — it
        # materializes the full shuffle before its budget check runs —
        # so the lazy path is the only one that can answer at all.
        assert is_executable(self.WIDE(), max_traces=100) is True

    def test_eager_oracle_still_raises_past_budget(self):
        # Smaller wide goal (1680 interleavings): the eager set-builder
        # keeps its historical contract of raising beyond the budget.
        with pytest.raises(TooManyTracesError):
            traces(_parallel_chains(3, 3), max_traces=100)

    def test_count_traces_saturates_instead_of_raising(self):
        wide = self.WIDE()
        count = count_traces(wide, max_traces=200)
        assert not count.exact
        assert count >= 1  # a usable lower bound, not a traceback
        assert isinstance(count, int)

    def test_count_traces_exact_within_budget(self):
        count = count_traces(A | B | C)
        assert count == 6
        assert count.exact

    def test_iter_traces_matches_eager_set(self):
        from repro.ctr.formulas import alt, par, seq
        from repro.ctr.traces import iter_traces

        corpus = [
            seq(A, B) | C,
            alt(A >> B, C >> D),
            par(A, B, C),
            Isolated(A >> B) | C,
            (Send("t") >> A) | (Receive("t") >> B),
        ]
        for goal in corpus:
            assert set(iter_traces(goal)) == traces(goal)

    def test_is_executable_with_unsatisfiable_tokens(self):
        # receive with no matching send: no interleaving is valid, and the
        # short-circuit must still conclude False.
        goal = Receive("ghost") >> A
        assert is_executable(goal) is False

    @settings(max_examples=30, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_lazy_existence_agrees_with_eager(self, goal):
        assert is_executable(goal) == bool(traces(goal))
