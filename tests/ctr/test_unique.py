"""Tests for the unique-event property checker (Definition 3.1)."""

import pytest
from hypothesis import given

from repro.ctr.formulas import Isolated, Possibility, atoms
from repro.ctr.unique import check_unique_events, is_unique_event_goal, occurring_events
from repro.errors import UniqueEventError
from tests.conftest import unique_event_goals

A, B, C = atoms("a b c")


class TestViolations:
    def test_serial_repetition(self):
        assert not is_unique_event_goal(A >> A)

    def test_concurrent_repetition(self):
        assert not is_unique_event_goal(A | A)

    def test_serial_overlap_across_subtrees(self):
        assert not is_unique_event_goal((A | B) >> (A + C))

    def test_error_carries_event(self):
        with pytest.raises(UniqueEventError) as info:
            check_unique_events(A >> (B | A))
        assert info.value.event == "a"

    def test_deep_violation(self):
        goal = (A >> B) | (C + (B >> C))
        # b occurs in both the left concurrent branch and the right one.
        assert not is_unique_event_goal(goal)


class TestAllowed:
    def test_choice_alternatives_may_share(self):
        assert is_unique_event_goal((A >> B) + (B >> A))

    def test_nested_choice_sharing(self):
        goal = ((A + B) >> C) + (C >> (B + A))
        assert is_unique_event_goal(goal)

    def test_possibility_is_hypothetical(self):
        # a in the ◇ body never *occurs*, so a ⊗ ◇a is fine.
        assert is_unique_event_goal(A >> Possibility(A))

    def test_possibility_body_must_be_wellformed(self):
        assert not is_unique_event_goal(Possibility(A >> A))

    def test_isolated_counts_normally(self):
        assert not is_unique_event_goal(Isolated(A) >> A)
        assert is_unique_event_goal(Isolated(A >> B) | C)


class TestOccurringEvents:
    def test_simple(self):
        assert occurring_events(A >> (B + C)) == frozenset({"a", "b", "c"})

    def test_possibility_excluded(self):
        assert occurring_events(Possibility(A) >> B) == frozenset({"b"})

    def test_choice_union(self):
        assert occurring_events(A + B) == frozenset({"a", "b"})


class TestProperty:
    @given(unique_event_goals(max_events=6))
    def test_generated_goals_are_unique_event(self, goal):
        check_unique_events(goal)
