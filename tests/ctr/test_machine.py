"""Tests for the executable step semantics (the CTR proof-procedure machine)."""

import pytest

from repro.ctr.formulas import (
    EMPTY,
    PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    atoms,
)
from repro.ctr.machine import Config, Machine, can_complete, machine_traces
from repro.errors import SpecificationError

A, B, C, D = atoms("a b c d")


def successors_labels(goal):
    machine = Machine(goal)
    return sorted(machine.successors(machine.initial()))


class TestSteps:
    def test_atom_offers_itself(self):
        assert successors_labels(A) == ["a"]

    def test_serial_offers_head(self):
        assert successors_labels(A >> B) == ["a"]

    def test_concurrent_offers_all(self):
        assert successors_labels(A | B | C) == ["a", "b", "c"]

    def test_choice_offers_union(self):
        assert successors_labels((A >> B) + C) == ["a", "c"]

    def test_firing_commits_choice(self):
        machine = Machine((A >> B) + (C >> D))
        (config,) = machine.successors(machine.initial())["a"]
        assert sorted(machine.successors(config)) == ["b"]

    def test_receive_blocks_until_send(self):
        goal = (A >> Send("t")) | (Receive("t") >> B)
        machine = Machine(goal)
        assert sorted(machine.successors(machine.initial())) == ["a"]
        (after_a,) = machine.successors(machine.initial())["a"]
        assert sorted(machine.successors(after_a)) == ["b"]

    def test_path_rejected(self):
        with pytest.raises(SpecificationError):
            Machine(PATH)


class TestIsolationAtRuntime:
    def test_running_block_excludes_others(self):
        goal = Isolated(A >> B) | C
        machine = Machine(goal)
        (inside,) = machine.successors(machine.initial())["a"]
        # While the isolated block runs, only its continuation is offered.
        assert sorted(machine.successors(inside)) == ["b"]

    def test_block_releases_on_completion(self):
        goal = Isolated(A >> B) | C
        machine = Machine(goal)
        (inside,) = machine.successors(machine.initial())["a"]
        (done,) = machine.successors(inside)["b"]
        assert sorted(machine.successors(done)) == ["c"]


class TestCompletion:
    def test_final_after_all_events(self):
        machine = Machine(A)
        (config,) = machine.successors(machine.initial())["a"]
        assert machine.is_final(config)

    def test_not_final_midway(self):
        machine = Machine(A >> B)
        (config,) = machine.successors(machine.initial())["a"]
        assert not machine.is_final(config)

    def test_trailing_send_finishes_silently(self):
        machine = Machine(A >> Send("t"))
        (config,) = machine.successors(machine.initial())["a"]
        assert machine.is_final(config)

    def test_can_complete(self):
        assert can_complete(A >> B)
        assert not can_complete(Receive("never") >> A)
        knot = (Receive("x") >> A >> Send("y")) | (Receive("y") >> B >> Send("x"))
        assert not can_complete(knot)


class TestPossibility:
    def test_possibility_checks_current_tokens(self):
        # ◇(receive t) succeeds only after send(t) happened.
        goal = Send("t") >> Possibility(Receive("t")) >> A
        assert machine_traces(goal) == {("a",)}

    def test_possibility_blocks_when_unsatisfiable(self):
        goal = Possibility(Receive("t")) >> A
        assert machine_traces(goal) == frozenset()

    def test_possibility_does_not_leak_tokens(self):
        # The hypothetical send inside ◇ must not enable a real receive.
        goal = Possibility(Send("t")) >> Receive("t") >> A
        assert machine_traces(goal) == frozenset()


class TestHooks:
    def test_test_hook_gates_branch(self):
        goal = (Test("go") >> A) + (Test("stop") >> B)
        machine = Machine(goal, test_hook=lambda t: t.name == "go")
        assert sorted(machine.successors(machine.initial())) == ["a"]

    def test_default_hook_is_permissive(self):
        goal = Test("whatever") >> A
        assert machine_traces(goal) == {("a",)}


class TestConfig:
    def test_config_equality(self):
        assert Config(A) == Config(A)
        assert Config(A, frozenset({"t"})) != Config(A)

    def test_with_goal(self):
        config = Config(A, frozenset({"t"}))
        assert config.with_goal(B) == Config(B, frozenset({"t"}))

    def test_initial_is_empty_tokens(self):
        machine = Machine(A)
        assert machine.initial() == Config(A, frozenset())
