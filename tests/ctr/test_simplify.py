"""Tests for the ¬path-absorption tautologies and structural simplification."""

from hypothesis import given

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    Choice,
    Concurrent,
    Isolated,
    Possibility,
    Serial,
    atoms,
)
from repro.ctr.simplify import is_failure, simplify
from repro.ctr.traces import traces
from tests.conftest import unique_event_goals

A, B, C = atoms("a b c")


class TestTautologies:
    def test_negpath_absorbs_serial_left(self):
        assert simplify(Serial((NEG_PATH, A))) is NEG_PATH

    def test_negpath_absorbs_serial_right(self):
        assert simplify(Serial((A, NEG_PATH))) is NEG_PATH

    def test_negpath_absorbs_concurrent(self):
        assert simplify(Concurrent((A, NEG_PATH))) is NEG_PATH

    def test_negpath_vanishes_in_choice(self):
        assert simplify(Choice((A, NEG_PATH))) == A

    def test_all_negpath_choice_fails(self):
        assert simplify(Choice((NEG_PATH, NEG_PATH))) is NEG_PATH

    def test_nested_absorption(self):
        goal = Serial((A, Choice((Serial((B, NEG_PATH)), C))))
        assert simplify(goal) == Serial((A, C))


class TestStructural:
    def test_flattening(self):
        goal = Serial((Serial((A, B)), C))
        assert simplify(goal) == Serial((A, B, C))

    def test_isolated_over_failure(self):
        assert simplify(Isolated(NEG_PATH)) is NEG_PATH

    def test_isolated_over_leaf_is_noop(self):
        assert simplify(Isolated(A)) == A

    def test_isolated_idempotent(self):
        assert simplify(Isolated(Isolated(A >> B))) == Isolated(A >> B)

    def test_isolated_over_empty(self):
        assert simplify(Isolated(EMPTY)) is EMPTY

    def test_possibility_over_failure(self):
        assert simplify(Possibility(NEG_PATH)) is NEG_PATH

    def test_possibility_idempotent(self):
        assert simplify(Possibility(Possibility(A >> B))) == Possibility(A >> B)

    def test_possibility_over_empty(self):
        assert simplify(Possibility(EMPTY)) is EMPTY

    def test_is_failure(self):
        assert is_failure(NEG_PATH)
        assert not is_failure(A)


class TestProperties:
    @given(unique_event_goals(max_events=4))
    def test_idempotent(self, goal):
        once = simplify(goal)
        assert simplify(once) == once

    @given(unique_event_goals(max_events=4))
    def test_preserves_traces(self, goal):
        assert traces(simplify(goal)) == traces(goal)
