"""Unit tests for the CTR formula AST and its smart constructors."""

import pytest

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Isolated,
    NegPath,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    atom,
    atoms,
    event_names,
    goal_size,
    is_concurrent_horn,
    par,
    seq,
    subgoals,
    walk,
)

A, B, C, D = atoms("a b c d")


class TestAtoms:
    def test_atom_builder(self):
        assert atom("x") == Atom("x")

    def test_atoms_from_string(self):
        assert atoms("a b c") == (Atom("a"), Atom("b"), Atom("c"))

    def test_atoms_with_commas(self):
        assert atoms("a, b,c") == (Atom("a"), Atom("b"), Atom("c"))

    def test_atoms_from_iterable(self):
        assert atoms(["x", "y"]) == (Atom("x"), Atom("y"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_atoms_are_hashable_and_equal(self):
        assert Atom("a") == Atom("a")
        assert hash(Atom("a")) == hash(Atom("a"))
        assert Atom("a") != Atom("b")


class TestOperatorDsl:
    def test_rshift_builds_serial(self):
        assert A >> B == Serial((A, B))

    def test_or_builds_concurrent(self):
        assert (A | B) == Concurrent((A, B))

    def test_add_builds_choice(self):
        assert (A + B) == Choice((A, B))

    def test_mixed_expression(self):
        goal = A >> (B | C) >> D
        assert isinstance(goal, Serial)
        assert goal.parts == (A, Concurrent((B, C)), D)


class TestSmartConstructors:
    def test_seq_flattens(self):
        assert seq(seq(A, B), C) == Serial((A, B, C))

    def test_par_flattens(self):
        assert par(par(A, B), C) == Concurrent((A, B, C))

    def test_alt_flattens(self):
        assert alt(alt(A, B), C) == Choice((A, B, C))

    def test_seq_unit(self):
        assert seq(A) == A
        assert seq() is EMPTY
        assert seq(A, EMPTY, B) == Serial((A, B))

    def test_par_unit(self):
        assert par(A) == A
        assert par(A, EMPTY) == A

    def test_alt_dedupes(self):
        assert alt(A, A) == A
        assert alt(A, B, A) == Choice((A, B))

    def test_neg_path_absorbs_serial(self):
        assert seq(A, NEG_PATH, B) is NEG_PATH

    def test_neg_path_absorbs_concurrent(self):
        assert par(A, NEG_PATH) is NEG_PATH

    def test_neg_path_identity_for_choice(self):
        assert alt(A, NEG_PATH) == A
        assert alt(NEG_PATH, NEG_PATH) is NEG_PATH

    def test_raw_constructors_require_arity(self):
        with pytest.raises(ValueError):
            Serial((A,))
        with pytest.raises(ValueError):
            Concurrent((A,))
        with pytest.raises(ValueError):
            Choice((A,))


class TestTraversal:
    def test_subgoals_of_composites(self):
        assert subgoals(A >> B) == (A, B)
        assert subgoals(Isolated(A)) == (A,)
        assert subgoals(Possibility(A)) == (A,)

    def test_subgoals_of_leaves(self):
        assert subgoals(A) == ()
        assert subgoals(Send("t")) == ()

    def test_walk_preorder(self):
        goal = A >> (B | C)
        nodes = list(walk(goal))
        assert nodes[0] == goal
        assert Atom("a") in nodes
        assert Concurrent((B, C)) in nodes

    def test_goal_size(self):
        assert goal_size(A) == 1
        assert goal_size(A >> B) == 3
        assert goal_size(A >> (B | C)) == 5
        assert goal_size(Isolated(A >> B)) == 4


class TestEventNames:
    def test_simple(self):
        assert event_names(A >> (B | C)) == frozenset({"a", "b", "c"})

    def test_send_receive_test_are_not_events(self):
        goal = seq(A, Send("t"), Receive("t"), Test("cond"))
        assert event_names(goal) == frozenset({"a"})

    def test_possibility_excluded_by_default(self):
        goal = Possibility(B) >> A
        assert event_names(goal) == frozenset({"a"})

    def test_possibility_included_on_request(self):
        goal = Possibility(B) >> A
        assert event_names(goal, include_hypothetical=True) == frozenset({"a", "b"})


class TestConcurrentHornCheck:
    def test_goals_are_concurrent_horn(self):
        assert is_concurrent_horn(A >> (B | C) + D)
        assert is_concurrent_horn(Isolated(A) >> Possibility(B))

    def test_path_literals_are_not(self):
        assert not is_concurrent_horn(PATH)
        assert not is_concurrent_horn(seq(A, B) if False else NEG_PATH)

    def test_leaf_kinds(self):
        assert is_concurrent_horn(Send("x"))
        assert is_concurrent_horn(Test("c"))
        assert is_concurrent_horn(EMPTY)


class TestMiscNodes:
    def test_empty_singleton_identity(self):
        assert Empty() == EMPTY
        assert isinstance(NEG_PATH, NegPath)

    def test_test_predicate_not_in_equality(self):
        assert Test("c", predicate=lambda db: True) == Test("c")
        assert hash(Test("c", predicate=lambda db: True)) == hash(Test("c"))

    def test_str_forms(self):
        assert str(Atom("a")) == "a"
        assert str(Send("t")) == "send(t)"
        assert str(Receive("t")) == "receive(t)"
        assert str(Test("c")) == "c?"
