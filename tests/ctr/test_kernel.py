"""Differential tests for the flat kernel backend.

Every query the kernel answers — traces, executability, counting,
scheduling, verification witnesses — is checked bit-for-bit against the
object-graph implementation it replaces, over randomly generated goals
and constraint sets. The shared-memory plumbing gets its own lifecycle
tests: refcounted segments, unlink-after-fan-out, and no leak when a
worker crashes mid-flight.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.automata import ConstraintAutomaton
from repro.constraints.algebra import SerialConstraint, must, order
from repro.constraints.satisfy import satisfies
from repro.core import kernel_backend, parallel
from repro.core.compiler import compile_workflow
from repro.core.scheduler import Scheduler, seeded_strategy
from repro.core.verify import verify_properties, verify_property
from repro.ctr.formulas import PATH, atoms, event_names
from repro.ctr.kernel import (
    ConstraintKernel,
    KernelProgram,
    KernelScheduler,
    legal_traces_kernel,
    lower_goal,
)
from repro.ctr.traces import TooManyTracesError, count_traces, is_executable, traces
from repro.errors import IneligibleEventError, SchedulingError, SpecificationError
from tests.conftest import constraints_over, unique_event_goals

A, B, C = atoms("a b c")

MAX = 20_000


def _crash_worker(*argv, **kw):  # pragma: no cover - runs in the worker
    import os

    os._exit(1)


def _object_traces(goal):
    try:
        return traces(goal, max_traces=MAX)
    except TooManyTracesError:
        assume(False)


class TestLowering:
    def test_path_rejected(self):
        with pytest.raises(SpecificationError):
            lower_goal(A >> PATH)

    def test_roundtrip_bytes(self):
        program = lower_goal((A | B) >> C)
        clone = KernelProgram.from_buffer(program.to_bytes())
        assert clone.events == program.events
        assert clone.traces() == program.traces()

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_roundtrip_preserves_queries(self, goal):
        program = lower_goal(goal)
        clone = KernelProgram.from_buffer(program.to_bytes())
        expected = _object_traces(goal)
        assert program.traces(max_traces=MAX) == expected
        assert clone.traces(max_traces=MAX) == expected


class TestDifferentialQueries:
    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_traces_identical(self, goal):
        expected = _object_traces(goal)
        assert lower_goal(goal).traces(max_traces=MAX) == expected

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_is_executable_identical(self, goal):
        assert lower_goal(goal).is_executable() == is_executable(goal)

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_count_traces_identical(self, goal):
        expected = count_traces(goal, max_traces=MAX)
        actual = lower_goal(goal).count_traces(max_traces=MAX)
        assume(expected.exact and actual.exact)
        assert int(actual) == int(expected)

    def test_count_saturates(self):
        program = lower_goal((A | B) >> C)
        full = program.count_traces()
        assert full.exact and int(full) == 2
        # Saturated counts are lower bounds; the two engines explore in
        # different orders, so only the *exact* counts are bit-identical.
        capped = program.count_traces(max_traces=1)
        assert not capped.exact
        assert int(capped) <= int(full)


class TestDifferentialScheduling:
    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_eligible_and_run(self, goal):
        obj = Scheduler(goal)
        ker = KernelScheduler(lower_goal(goal))
        assert ker.eligible() == obj.eligible()
        assert ker.can_finish() == obj.can_finish()
        try:
            expected = obj.run()
        except SchedulingError:
            with pytest.raises(SchedulingError):
                ker.run()
            return
        assert ker.run() == expected

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.integers(0, 2**16))
    def test_seeded_run_identical(self, goal, seed):
        obj = Scheduler(goal)
        ker = KernelScheduler(lower_goal(goal))
        try:
            expected = obj.run(strategy=seeded_strategy(seed))
        except SchedulingError:
            assume(False)
        assert ker.run(strategy=seeded_strategy(seed)) == expected

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_enumerate_schedules_in_order(self, goal):
        obj = Scheduler(goal)
        ker = KernelScheduler(lower_goal(goal))
        try:
            expected = list(obj.enumerate_schedules(limit=MAX))
        except TooManyTracesError:
            assume(False)
        assert list(ker.enumerate_schedules(limit=MAX)) == expected

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_viable_events_identical(self, goal):
        obj = Scheduler(goal)
        ker = KernelScheduler(lower_goal(goal))
        assert ker.viable_events() == obj.viable_events()
        for avoid in (frozenset({"a"}), frozenset({"a", "b"})):
            assert ker.viable(avoid) == obj.viable(avoid)

    def test_fire_rejects_ineligible(self):
        ker = KernelScheduler(lower_goal(A >> B))
        with pytest.raises(IneligibleEventError):
            ker.fire("b")
        ker.fire("a")
        ker.fire("b")
        assert ker.finished
        assert ker.history == ("a", "b")


class TestConstraintKernel:
    @settings(max_examples=50, deadline=None)
    @given(constraints_over(("a", "b", "c", "d")))
    def test_agrees_with_automaton(self, constraint):
        import itertools

        kernel = ConstraintKernel.build([constraint])
        dfa = ConstraintAutomaton.build(constraint)
        for size in range(4):
            for seq in itertools.permutations(("a", "b", "c", "d"), size):
                assert kernel.accepts(seq) == dfa.accepts(seq)
                assert kernel.accepts(seq) == satisfies(seq, constraint)

    @settings(max_examples=30, deadline=None)
    @given(unique_event_goals(min_events=2, max_events=4), st.data())
    def test_legal_traces_identical(self, goal, data):
        events = tuple(sorted(event_names(goal)))
        assume(len(events) >= 2)
        constraints = [data.draw(constraints_over(events)) for _ in range(2)]
        program = lower_goal(goal)
        expected = frozenset(
            t for t in _object_traces(goal)
            if all(satisfies(t, c) for c in constraints)
        )
        assert legal_traces_kernel(program, constraints, max_traces=MAX) == expected

    def test_duplicate_serial_rejected(self):
        # algebra.SerialConstraint refuses duplicates at construction; the
        # kernel (like automata.build) re-validates as defense in depth
        # against constraints deserialized or built around __post_init__.
        dup = SerialConstraint.__new__(SerialConstraint)
        object.__setattr__(dup, "events", ("a", "b", "a"))
        with pytest.raises(SpecificationError):
            ConstraintKernel.build([dup])
        with pytest.raises(SpecificationError):
            ConstraintAutomaton.build(dup)


class TestBackendKnob:
    def test_invalid_backend_rejected(self):
        with pytest.raises(SpecificationError):
            compile_workflow(A >> B, [], backend="vectorized")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "kernel")
        assert kernel_backend.resolve_backend(None) == "kernel"
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert kernel_backend.resolve_backend(None) == "object"

    def test_compiled_workflow_equality_ignores_backend(self):
        obj = compile_workflow(A >> B, [], backend="object")
        ker = compile_workflow(A >> B, [], backend="kernel")
        assert obj == ker
        assert type(obj.scheduler()).__name__ == "Scheduler"
        assert type(ker.scheduler()).__name__ == "KernelScheduler"

    def test_test_hook_forces_object_scheduler(self):
        ker = compile_workflow(A >> B, [], backend="kernel")
        sched = ker.scheduler(test_hook=lambda event: True)
        assert type(sched).__name__ == "Scheduler"

    @settings(max_examples=25, deadline=None)
    @given(unique_event_goals(min_events=2, max_events=4), st.data())
    def test_verify_property_identical(self, goal, data):
        events = tuple(sorted(event_names(goal)))
        assume(len(events) >= 2)
        constraints = [data.draw(constraints_over(events))]
        prop = data.draw(constraints_over(events))
        obj = verify_property(goal, constraints, prop, backend="object")
        ker = verify_property(goal, constraints, prop, backend="kernel")
        assert obj.holds == ker.holds
        assert obj.witness == ker.witness
        assert obj.counterexample is ker.counterexample

    def test_verify_properties_jobs4_identical(self):
        goal = (A | B) >> C
        constraints = [order("a", "b")]
        props = [must("c"), order("b", "a"), must("z"), order("a", "c")]
        sequential = verify_properties(goal, constraints, props, jobs=1,
                                       backend="kernel")
        fanned = verify_properties(goal, constraints, props, jobs=4,
                                   backend="kernel")
        assert [(r.holds, r.witness) for r in fanned] == [
            (r.holds, r.witness) for r in sequential
        ]
        crossed = verify_properties(goal, constraints, props, jobs=4,
                                    backend="object")
        assert [(r.holds, r.witness) for r in crossed] == [
            (r.holds, r.witness) for r in sequential
        ]


class TestSharedMemoryLifecycle:
    def test_export_attach_release(self):
        goal = (A | B) >> C
        handle = kernel_backend.export_goal(goal)
        if handle is None:
            pytest.skip("shared memory unavailable")
        try:
            assert handle.name in kernel_backend.live_segments()
            assert kernel_backend.attach_goal(handle) is goal
        finally:
            kernel_backend.release_goal(handle)
        assert handle.name not in kernel_backend.live_segments()

    def test_refcounted_reexport(self):
        goal = A >> (B | C)
        first = kernel_backend.export_goal(goal)
        if first is None:
            pytest.skip("shared memory unavailable")
        second = kernel_backend.export_goal(goal)
        assert second == first
        kernel_backend.release_goal(first)
        # Still live: the second export holds a reference.
        assert first.name in kernel_backend.live_segments()
        kernel_backend.release_goal(second)
        assert first.name not in kernel_backend.live_segments()
        # Releasing an already-dead handle is a no-op, not an error.
        kernel_backend.release_goal(second)

    def test_program_roundtrip_via_shm(self):
        program = lower_goal((A | B) >> C)
        handle = kernel_backend.export_program(program)
        if handle is None:
            pytest.skip("shared memory unavailable")
        try:
            clone = kernel_backend.attach_program(handle)
            assert clone.traces() == program.traces()
        finally:
            kernel_backend.release_goal(handle)

    def test_fanout_unlinks_segments(self):
        goal = (A | B) >> C
        before = set(kernel_backend.live_segments())
        results = verify_properties(goal, [order("a", "b")],
                                    [must("c"), must("z"), order("b", "a")],
                                    jobs=2)
        assert [r.holds for r in results] == [True, False, False]
        assert set(kernel_backend.live_segments()) == before

    def test_no_leak_on_worker_crash(self, monkeypatch):
        # Every submitted task kills its worker; the BrokenProcessPool
        # fallback must still release the parent's segment and answer
        # sequentially.
        parallel._reset_pool()
        monkeypatch.setattr(parallel, "_verify_one", _crash_worker)
        before = set(kernel_backend.live_segments())
        goal = (A | B) >> C
        try:
            results = verify_properties(goal, [], [must("c"), must("z")],
                                        jobs=2)
        finally:
            parallel._reset_pool()
        assert [r.holds for r in results] == [True, False]
        assert set(kernel_backend.live_segments()) == before
