"""Tests for the textual goal syntax and its round-trip with the printer."""

import pytest
from hypothesis import given

from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Choice,
    Concurrent,
    Isolated,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    atoms,
)
from repro.ctr.parser import parse_goal
from repro.ctr.pretty import pretty
from repro.errors import ParseError
from tests.conftest import unique_event_goals

A, B, C, D = atoms("a b c d")


class TestBasics:
    def test_atom(self):
        assert parse_goal("a") == A

    def test_serial(self):
        assert parse_goal("a * b * c") == Serial((A, B, C))

    def test_concurrent(self):
        assert parse_goal("a | b") == Concurrent((A, B))

    def test_choice(self):
        assert parse_goal("a + b") == Choice((A, B))

    def test_precedence(self):
        # '*' binds tighter than '|', which binds tighter than '+'.
        goal = parse_goal("a * b | c + d")
        assert goal == Choice((Concurrent((Serial((A, B)), C)), D))

    def test_parentheses(self):
        assert parse_goal("a * (b + c)") == Serial((A, Choice((B, C))))

    def test_empty(self):
        assert parse_goal("()") is EMPTY

    def test_special_names(self):
        assert parse_goal("path") is PATH
        assert parse_goal("fail") is NEG_PATH


class TestOperators:
    def test_isolated(self):
        assert parse_goal("[a * b]") == Isolated(Serial((A, B)))

    def test_possibility(self):
        assert parse_goal("<a>") == Possibility(A)

    def test_send_receive(self):
        assert parse_goal("send(t) * receive(t)") == Serial((Send("t"), Receive("t")))

    def test_test_condition(self):
        assert parse_goal("cond? * a") == Serial((Test("cond"), A))


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_goal("a b")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_goal("(a * b")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_goal("")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_goal("a & b")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_goal("a *")

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse_goal("a @ b")
        assert info.value.position == 2


class TestRoundTrip:
    @given(unique_event_goals(max_events=6))
    def test_pretty_parse_identity(self, goal):
        assert parse_goal(pretty(goal)) == goal

    def test_round_trip_with_specials(self):
        text = "[a * send(t)] | (receive(t) * b + c?) * ()"
        goal = parse_goal(text)
        assert parse_goal(pretty(goal)) == goal
