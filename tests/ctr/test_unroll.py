"""Tests for bounded loop unrolling (Section 7 extension)."""

import pytest

from repro.constraints.algebra import disj, must
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import Atom, atoms
from repro.ctr.rules import Rule
from repro.ctr.traces import traces
from repro.ctr.unique import is_unique_event_goal
from repro.ctr.unroll import bounded_loop, occurrence_names, recursive_heads, unroll
from repro.errors import SpecificationError

A, B, C = atoms("a b c")
TRY, DONE = atoms("try done")


class TestRecursiveHeads:
    def test_self_recursion(self):
        rules = [Rule("w", A + (B >> Atom("w")))]
        assert recursive_heads(rules) == {"w"}

    def test_mutual_recursion(self):
        rules = [Rule("x", Atom("y") + A), Rule("y", Atom("x") + B)]
        assert recursive_heads(rules) == {"x", "y"}

    def test_non_recursive(self):
        rules = [Rule("top", Atom("sub")), Rule("sub", A)]
        assert recursive_heads(rules) == frozenset()


class TestUnroll:
    def test_simple_loop(self):
        # w ← done ∨ (try ⊗ w): retry up to k times.
        rules = [Rule("w", DONE + (TRY >> Atom("w")))]
        base = unroll(rules, bound=2)
        goal = base.expand(Atom("w"))
        assert is_unique_event_goal(goal)
        assert traces(goal) == {
            ("done",),
            ("try#1", "done"),
            ("try#1", "try#2", "done"),
        }

    def test_zero_bound_keeps_base_case_only(self):
        rules = [Rule("w", DONE + (TRY >> Atom("w")))]
        goal = unroll(rules, bound=0).expand(Atom("w"))
        assert traces(goal) == {("done",)}

    def test_no_base_case_rejected(self):
        rules = [Rule("w", TRY >> Atom("w"))]
        with pytest.raises(SpecificationError):
            unroll(rules, bound=3)

    def test_negative_bound_rejected(self):
        with pytest.raises(SpecificationError):
            unroll([Rule("w", A)], bound=-1)

    def test_non_recursive_rules_untouched(self):
        rules = [Rule("top", Atom("sub") >> C), Rule("sub", A + B)]
        base = unroll(rules, bound=5)
        assert base.expand(Atom("top")) == (A + B) >> C

    def test_mutual_recursion_unrolls(self):
        # ping ← stop ∨ (p ⊗ pong);  pong ← q ⊗ ping
        rules = [
            Rule("ping", Atom("stop") + (Atom("p") >> Atom("pong"))),
            Rule("pong", Atom("q") >> Atom("ping")),
        ]
        goal = unroll(rules, bound=4).expand(Atom("ping"))
        got = traces(goal)
        assert ("stop",) in got
        # One full ping->pong->ping round: p, q, then stop (renamed per level).
        assert any(t[0].startswith("p#") and t[-1].startswith("stop") for t in got)
        assert is_unique_event_goal(goal)

    def test_unrolled_loops_compile_with_constraints(self):
        rules = [Rule("retry", DONE + (TRY >> Atom("retry")))]
        goal = unroll(rules, bound=3).expand(Atom("retry"))
        # "at least one attempt happens"
        attempted = disj(*(must(name) for name in occurrence_names("try", 3)))
        compiled = compile_workflow(goal, [attempted])
        assert compiled.consistent
        assert all("try#1" in schedule for schedule in compiled.schedules())


class TestBoundedLoop:
    def test_traces(self):
        goal = bounded_loop(TRY, 2, DONE)
        assert traces(goal) == {
            ("done",),
            ("try#1", "done"),
            ("try#1", "try#2", "done"),
        }

    def test_empty_exit(self):
        goal = bounded_loop(A, 2)
        assert traces(goal) == {(), ("a#1",), ("a#1", "a#2")}

    def test_compound_body(self):
        goal = bounded_loop(A >> B, 2, C)
        assert ("a#1", "b#1", "a#2", "b#2", "c") in traces(goal)
        assert is_unique_event_goal(goal)

    def test_negative_bound_rejected(self):
        with pytest.raises(SpecificationError):
            bounded_loop(A, -1)

    def test_occurrence_names(self):
        assert occurrence_names("e", 3) == ["e#1", "e#2", "e#3"]
