"""Cross-module integration tests: the grand agreement properties.

Four independent implementations must agree on every specification:

1. the Apply/Excise compiler + pro-active scheduler (the paper's system);
2. the enumerable trace semantics filtered by constraint satisfaction
   (the denotational oracle);
3. the passive baseline (generate-and-test + per-event validation);
4. the explicit-state model checker over constraint automata.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ControlFlowGraph,
    Database,
    WorkflowEngine,
    atoms,
    compile_workflow,
    event_names,
    is_consistent,
    order,
    satisfies,
    to_goal,
    traces,
    verify_property,
)
from repro.baselines.modelcheck import model_check_consistency
from repro.baselines.passive import generate_and_test_consistency, validate_sequence
from tests.conftest import constraints_over, unique_event_goals


class TestFourWayAgreement:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_consistency_agreement(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraints = [data.draw(constraints_over(events))]

        oracle = any(
            all(satisfies(t, c) for c in constraints) for t in traces(goal)
        )
        compiled = compile_workflow(goal, constraints)
        passive = generate_and_test_consistency(goal, constraints) is not None
        model_checked = model_check_consistency(goal, constraints).holds

        assert compiled.consistent == oracle
        assert passive == oracle
        assert model_checked == oracle

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_every_compiled_schedule_validates_passively(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraints = [data.draw(constraints_over(events))]
        compiled = compile_workflow(goal, constraints)
        if not compiled.consistent:
            return
        for schedule in compiled.schedules(limit=5_000):
            assert validate_sequence(schedule, constraints)
            assert schedule in traces(goal)


class TestEndToEndPipeline:
    def test_graph_to_execution(self):
        """CFG → goal → compile → schedule → execute, in one flow."""
        g = ControlFlowGraph()
        g.add_arc("receive_order", "check_credit")
        g.add_arc("receive_order", "check_stock")
        g.add_arc("check_credit", "approve")
        g.add_arc("check_stock", "approve")

        goal = to_goal(g)
        constraints = [order("check_credit", "check_stock")]
        compiled = compile_workflow(goal, constraints)
        assert compiled.consistent

        engine = WorkflowEngine(compiled, db=Database())
        report = engine.run()
        assert report.schedule == (
            "receive_order",
            "check_credit",
            "check_stock",
            "approve",
        )
        assert report.database.log.events() == report.schedule

    def test_verification_pipeline(self):
        a, b, c = atoms("a b c")
        goal = a >> (b | c)
        result = verify_property(goal, [order("b", "c")], order("a", "c"))
        assert result.holds
        assert is_consistent(goal, [order("b", "c")])

    def test_inconsistent_graph_reported_before_runtime(self):
        a, b = atoms("a b")
        compiled = compile_workflow(a >> b, [order("b", "a")])
        assert not compiled.consistent
        assert list(compiled.schedules()) == []
