"""Tests for sub-workflow-scoped compilation (Section 7)."""

import pytest

from repro.constraints.algebra import absent, disj, must, order
from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.modular import compile_modular
from repro.ctr.formulas import Atom, atoms, goal_size
from repro.ctr.rules import Rule, RuleBase
from repro.ctr.traces import traces
from repro.errors import ConstraintError, InconsistentWorkflowError

A, B, C, D, E, F = atoms("a b c d e f")


def simple_rules():
    return RuleBase(
        [
            Rule("left", A + B),
            Rule("right", C + D),
        ]
    )


class TestEquivalence:
    def test_matches_monolithic_compilation(self):
        rules = simple_rules()
        goal = Atom("left") >> Atom("right")
        scoped = {"left": [must("a")], "right": [absent("c")]}
        modular = compile_modular(goal, rules, scoped)
        monolithic = compile_workflow(
            goal, [must("a"), absent("c")], rules=rules
        )
        assert traces(modular.goal) == traces(monolithic.goal)

    def test_top_level_constraints_apply_after(self):
        rules = simple_rules()
        goal = Atom("left") | Atom("right")
        modular = compile_modular(
            goal, rules, {"left": [must("a")]}, top_level=[order("a", "c")]
        )
        got = traces(modular.goal)
        want = {
            t
            for t in traces(rules.expand(goal))
            if satisfies(t, must("a")) and satisfies(t, order("a", "c"))
        }
        assert got == want

    def test_nested_subworkflows_keep_child_compilation(self):
        rules = RuleBase(
            [
                Rule("inner", A + B),
                Rule("outer", Atom("inner") >> C),
            ]
        )
        goal = Atom("outer") >> D
        modular = compile_modular(goal, rules, {"inner": [absent("a")]})
        assert traces(modular.goal) == {("b", "c", "d")}


class TestScoping:
    def test_out_of_scope_constraint_rejected(self):
        rules = simple_rules()
        with pytest.raises(ConstraintError) as info:
            compile_modular(Atom("left"), rules, {"left": [must("c")]})
        assert "c" in str(info.value)

    def test_unknown_scope_rejected(self):
        rules = simple_rules()
        with pytest.raises(ConstraintError):
            compile_modular(Atom("left"), rules, {"nonexistent": [must("a")]})

    def test_inconsistent_scope_reported_with_name(self):
        rules = simple_rules()
        with pytest.raises(InconsistentWorkflowError) as info:
            compile_modular(
                Atom("left"), rules, {"left": [must("a"), must("b")]}
            )
        assert "left" in str(info.value)

    def test_empty_scope_key_means_top_level(self):
        rules = simple_rules()
        goal = Atom("left")
        modular = compile_modular(goal, rules, {"": [absent("b")]})
        assert traces(modular.goal) == {("a",)}


class TestSizeReduction:
    """The Section 7 claim: scoped compilation confines the d^N blow-up."""

    @staticmethod
    def _workload(n_subs: int):
        rules = RuleBase()
        goal_parts = []
        scoped = {}
        flat_constraints = []
        for i in range(n_subs):
            x, y = Atom(f"x{i}"), Atom(f"y{i}")
            head = f"sub{i}"
            rules.add(Rule(head, x | y))
            goal_parts.append(Atom(head))
            constraint = disj(order(f"x{i}", f"y{i}"), order(f"y{i}", f"x{i}"))
            scoped[head] = [constraint]
            flat_constraints.append(constraint)
        from repro.ctr.formulas import seq

        return seq(*goal_parts), rules, scoped, flat_constraints

    def test_modular_is_smaller_and_equivalent(self):
        goal, rules, scoped, flat = self._workload(4)
        modular = compile_modular(goal, rules, scoped)
        monolithic = compile_workflow(goal, flat, rules=rules)
        assert traces(modular.goal) == traces(monolithic.goal)
        # Monolithic pays d^N across scopes; modular pays d per scope.
        assert goal_size(modular.goal) < goal_size(monolithic.goal)

    def test_blowup_ratio_grows_with_scopes(self):
        ratios = []
        for n in (2, 4):
            goal, rules, scoped, flat = self._workload(n)
            modular = compile_modular(goal, rules, scoped)
            monolithic = compile_workflow(goal, flat, rules=rules)
            ratios.append(goal_size(monolithic.goal) / goal_size(modular.goal))
        assert ratios[1] > ratios[0] > 1.0
