"""Tests for the rejection-explanation diagnostics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import absent, must, order
from repro.core.compiler import compile_workflow
from repro.core.explain import explain_rejection, is_allowed
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import traces
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


class TestIsAllowed:
    def test_accepts_legal_schedule(self):
        compiled = compile_workflow((A | B) >> C, [order("a", "b")])
        assert is_allowed(compiled, ("a", "b", "c"))

    def test_rejects_constraint_violation(self):
        compiled = compile_workflow((A | B) >> C, [order("a", "b")])
        assert not is_allowed(compiled, ("b", "a", "c"))

    def test_rejects_incomplete(self):
        compiled = compile_workflow(A >> B)
        assert not is_allowed(compiled, ("a",))


class TestExplanations:
    def test_allowed_sequence(self):
        compiled = compile_workflow(A >> B)
        explanation = explain_rejection(compiled, ("a", "b"))
        assert explanation.allowed
        assert "allowed" in explanation.describe()

    def test_unknown_event(self):
        compiled = compile_workflow(A >> B)
        explanation = explain_rejection(compiled, ("a", "zzz"))
        assert not explanation.allowed
        assert explanation.unknown_events == ("zzz",)
        assert "unknown events" in explanation.describe()

    def test_control_flow_divergence(self):
        compiled = compile_workflow(A >> B >> C)
        explanation = explain_rejection(compiled, ("a", "c"))
        assert explanation.diverges_at == 1
        assert explanation.eligible_instead == {"b"}
        assert "diverges at step 2" in explanation.describe()

    def test_incomplete_sequence(self):
        compiled = compile_workflow(A >> B)
        explanation = explain_rejection(compiled, ("a",))
        assert explanation.incomplete
        assert "stops before" in explanation.describe()

    def test_violated_constraint_named(self):
        constraints = [order("a", "b"), absent("d")]
        compiled = compile_workflow(A | B | C, constraints)
        explanation = explain_rejection(compiled, ("b", "a", "c"))
        assert explanation.violated_constraints == (order("a", "b"),)
        assert "precedes(a, b)" in explanation.describe()

    def test_multiple_violations(self):
        constraints = [order("a", "b"), must("c")]
        compiled = compile_workflow(A | B | (C + D), constraints)
        explanation = explain_rejection(compiled, ("b", "a", "d"))
        assert set(explanation.violated_constraints) == set(constraints)


class TestSoundness:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_explanations_agree_with_semantics(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        legal = set(compiled.schedules(limit=20_000))
        candidate = data.draw(st.permutations(list(events)))
        candidate = tuple(candidate)
        explanation = explain_rejection(compiled, candidate)
        assert explanation.allowed == (candidate in legal)
        if not explanation.allowed and not explanation.unknown_events:
            # The explanation must give at least one concrete reason.
            assert (
                explanation.diverges_at is not None
                or explanation.incomplete
                or explanation.violated_constraints
                or explanation.notes
            )
