"""Tests for incremental recompilation."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import absent, must, order
from repro.core.compiler import compile_workflow
from repro.core.incremental import add_constraint, add_constraints
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import TooManyTracesError, traces
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


class TestBasics:
    def test_add_constraint_prunes(self):
        compiled = compile_workflow(A >> (B + C))
        updated = add_constraint(compiled, absent("b"))
        assert traces(updated.goal) == {("a", "c")}
        assert updated.constraints == (absent("b"),)

    def test_add_order_constraint_syncs(self):
        compiled = compile_workflow(A | B | C)
        updated = add_constraint(compiled, order("a", "b"))
        assert traces(updated.goal) == {
            t for t in traces(A | B | C) if t.index("a") < t.index("b")
        }

    def test_detects_new_inconsistency(self):
        compiled = compile_workflow(A >> B, [must("a")])
        updated = add_constraint(compiled, order("b", "a"))
        assert not updated.consistent

    def test_inconsistent_stays_inconsistent(self):
        compiled = compile_workflow(A >> B, [order("b", "a")])
        updated = add_constraint(compiled, must("a"))
        assert not updated.consistent
        assert len(updated.constraints) == 2

    def test_empty_addition_is_identity(self):
        compiled = compile_workflow(A >> B, [must("a")])
        assert add_constraints(compiled, []) is compiled

    def test_source_is_preserved(self):
        compiled = compile_workflow(A >> (B + C))
        updated = add_constraint(compiled, absent("b"))
        assert updated.source == compiled.source


class TestTokenFreshness:
    def test_new_sync_tokens_do_not_collide(self):
        compiled = compile_workflow(A | B | C | D, [order("a", "b")])
        updated = add_constraint(compiled, order("c", "d"))
        from repro.ctr.formulas import Send, walk

        tokens = [n.token for n in walk(updated.goal) if isinstance(n, Send)]
        assert len(tokens) == len(set(tokens))
        assert updated.consistent

    def test_no_collision_after_two_incremental_steps(self):
        # Regression: re-seeding must account for the tokens minted by
        # *previous* incremental steps, not just the original compile —
        # a collision here pairs a new receive with an old send and
        # silently deadlocks (or wrongly orders) the schedule.
        from repro.ctr.formulas import Receive, Send, walk

        E, F = atoms("e f")
        goal = A | B | C | D | E | F
        step0 = compile_workflow(goal, [order("a", "b")])
        step1 = add_constraint(step0, order("c", "d"))
        step2 = add_constraint(step1, order("e", "f"))

        sends = [n.token for n in walk(step2.goal) if isinstance(n, Send)]
        receives = [n.token for n in walk(step2.goal) if isinstance(n, Receive)]
        assert len(sends) == len(set(sends)) == 3
        assert sorted(sends) == sorted(receives)

        batch = compile_workflow(goal, [order("a", "b"), order("c", "d"),
                                        order("e", "f")])
        assert set(step2.schedules()) == set(batch.schedules())

    def test_embedded_tokens_are_collected_from_nodes_not_names(self):
        # The avoid-set is built from the actual send/receive nodes, so a
        # hand-assembled goal already containing xi1 forces the next mint
        # to skip it — regardless of any naming-convention parsing.
        from repro.core.compiler import CompiledWorkflow
        from repro.core.incremental import used_tokens
        from repro.ctr.formulas import Receive, Send, seq

        goal = seq(A, Send("xi1"), Receive("xi1"), B) | (C | D)
        compiled = CompiledWorkflow(source=goal, constraints=(),
                                    applied=goal, goal=goal)
        assert used_tokens(goal) == {"xi1"}
        updated = add_constraint(compiled, order("c", "d"))
        assert updated.consistent
        tokens = used_tokens(updated.goal)
        assert len(tokens) == 2  # xi1 plus exactly one genuinely fresh token


class TestEquivalenceWithFullRecompilation:
    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_incremental_equals_batch(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        first = data.draw(constraints_over(events))
        second = data.draw(constraints_over(events))

        incremental = add_constraint(compile_workflow(goal, [first]), second)
        batch = compile_workflow(goal, [first, second])

        assert incremental.consistent == batch.consistent
        if batch.consistent:
            try:
                expected = traces(batch.goal)
                actual = traces(incremental.goal)
            except TooManyTracesError:
                # Sync tokens can make the trace set explode combinatorially;
                # reject such examples rather than time the comparison out.
                assume(False)
            assert actual == expected
