"""Edge-case tests for Excise's precedence-graph machinery."""

from repro.core.excise import excise, flat_executable
from repro.ctr.formulas import (
    EMPTY,
    Isolated,
    Possibility,
    Receive,
    Send,
    atoms,
    seq,
)
from repro.ctr.machine import can_complete
from repro.ctr.simplify import is_failure
from repro.ctr.traces import traces

A, B, C, D = atoms("a b c d")


class TestNestedIsolation:
    def test_token_into_doubly_nested_block(self):
        inner = Isolated(Receive("t") >> A)
        goal = Isolated(inner >> B) | (C >> Send("t"))
        # Send must precede the OUTERMOST block (it cannot pause either).
        assert flat_executable(goal)
        assert traces(goal) == {("c", "a", "b")}

    def test_deadlock_through_nesting(self):
        inner = Isolated(Receive("t") >> A)
        goal = seq(Isolated(inner >> B), Send("t"))
        assert not flat_executable(goal)

    def test_send_escaping_block(self):
        goal = Isolated(A >> Send("t")) | (Receive("t") >> B)
        assert flat_executable(goal)
        assert traces(goal) == {("a", "b")}

    def test_siblings_in_same_block_unaffected(self):
        goal = Isolated(seq(Send("t"), A, Receive("t"), B))
        assert flat_executable(goal)


class TestTokenEdgeCases:
    def test_multiple_tokens_chain(self):
        goal = (
            (A >> Send("t1"))
            | (Receive("t1") >> B >> Send("t2"))
            | (Receive("t2") >> C >> Send("t3"))
            | (Receive("t3") >> D)
        )
        assert flat_executable(goal)
        assert traces(goal) == {("a", "b", "c", "d")}

    def test_duplicate_token_falls_back_to_search(self):
        # Hand-written goals may reuse a token; the linear graph check
        # cannot represent that, so Excise falls back to machine search.
        goal = (Send("t") >> A) | (Send("t") >> B) | (Receive("t") >> C)
        assert flat_executable(goal) == can_complete(goal)

    def test_self_deadlock_minimal(self):
        assert not flat_executable(seq(Receive("t"), Send("t")))

    def test_empty_goal(self):
        assert flat_executable(EMPTY)
        assert excise(EMPTY) is EMPTY


class TestPossibilityInExcise:
    def test_dead_possibility_in_branch_pruned(self):
        dead = Possibility(Receive("nope")) >> A
        assert is_failure(excise(dead))
        assert excise(dead + B) == B

    def test_nested_possibility_bodies_checked(self):
        dead_inner = Possibility(Possibility(Receive("nope")) >> A)
        assert is_failure(excise(dead_inner >> B))

    def test_live_possibility_kept(self):
        goal = Possibility(A + B) >> C
        assert excise(goal) == goal


class TestChoiceInteractions:
    def test_deeply_nested_local_choices(self):
        dead = Receive("x") >> A >> Send("x")
        goal = seq(C, seq(D, (dead + B)))
        assert excise(goal) == seq(C, D, B)

    def test_chain_of_entangled_choices(self):
        # Three choices, each viable only in one combination with the next.
        a1 = Send("p") >> A
        a2 = A.__class__("a2") >> Receive("q")
        b1 = Receive("p") >> B >> Send("q")
        b2 = B.__class__("b2")
        goal = (a1 + a2) | (b1 + b2)
        result = excise(goal)
        assert traces(result) == traces(goal)
        assert not is_failure(result)

    def test_all_entangled_combinations_dead(self):
        a1 = Receive("q") >> A >> Send("p")
        b1 = Receive("p") >> B >> Send("q")
        goal = (a1 + (Receive("r") >> C)) | b1
        assert is_failure(excise(goal))
