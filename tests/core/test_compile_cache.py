"""Tests for the persistent content-addressed compile cache."""

import json

import pytest

from repro.cli import main
from repro.constraints.algebra import absent, disj, must, order
from repro.core.compiler import CompileCache, compile_workflow
from repro.core.verify import verify_property
from repro.ctr.formulas import Test, atoms, seq
from repro.ctr.rules import Rule, RuleBase
from repro.ctr.traces import traces

A, B, C, D = atoms("a b c d")


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path / "cache")


class TestHitAndMiss:
    def test_cold_then_warm(self, cache):
        goal = (A >> B) + (C >> D)
        constraints = [disj(order("a", "c"), absent("d"))]
        cold = compile_workflow(goal, constraints, cache=cache)
        warm = compile_workflow(goal, constraints, cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        assert warm.goal == cold.goal
        assert warm.applied == cold.applied
        assert warm.constraints == cold.constraints
        # Deserialization re-interns, so a hit is not just equal but canonical.
        assert warm.goal is cold.goal
        assert traces(warm.goal) == traces(cold.goal)

    def test_different_specs_get_different_entries(self, cache):
        compile_workflow(A >> B, [must("a")], cache=cache)
        compile_workflow(A >> B, [must("b")], cache=cache)
        compile_workflow(A >> C, [must("a")], cache=cache)
        assert len(cache) == 3
        assert cache.hits == 0

    def test_directory_path_is_accepted_directly(self, tmp_path):
        compile_workflow(A >> B, cache=tmp_path / "bydir")
        again = compile_workflow(A >> B, cache=tmp_path / "bydir")
        assert again.goal == compile_workflow(A >> B).goal

    def test_rule_change_invalidates(self, cache):
        (sub,) = atoms("sub")
        base_one = RuleBase()
        base_one.add(Rule("sub", B >> C))
        base_two = RuleBase()
        base_two.add(Rule("sub", C >> B))
        one = compile_workflow(seq(A, sub), rules=base_one, cache=cache)
        two = compile_workflow(seq(A, sub), rules=base_two, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert traces(one.goal) != traces(two.goal)

    def test_inconsistent_results_are_cached_too(self, cache):
        constraints = [order("b", "a")]
        cold = compile_workflow(A >> B, constraints, cache=cache)
        warm = compile_workflow(A >> B, constraints, cache=cache)
        assert not cold.consistent and not warm.consistent
        assert cache.hits == 1


class TestEviction:
    def test_lru_eviction_beyond_max_entries(self, tmp_path):
        cache = CompileCache(tmp_path, max_entries=2)
        import os

        for i, goal in enumerate([A >> B, B >> C, C >> D, D >> A]):
            compile_workflow(goal, cache=cache)
            # mtime has second granularity on some filesystems; spread the
            # entries artificially so LRU ordering is deterministic.
            for j, entry in enumerate(sorted(tmp_path.glob("*.json"))):
                os.utime(entry, (i + j * 0.001, i + j * 0.001))
        assert len(cache) == 2

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(tmp_path, max_entries=0)

    def test_repeatedly_hit_entry_survives_eviction(self, tmp_path):
        # Regression guard for the touch-on-read contract: a cache *hit*
        # must refresh the entry's mtime, otherwise the hottest entry —
        # stored first, read constantly — has the oldest write time and is
        # exactly the one mtime-LRU eviction removes when the cap is hit.
        import os
        import time

        cache = CompileCache(tmp_path, max_entries=2)
        hot, warm, cold = A >> B, B >> C, C >> D
        compile_workflow(hot, cache=cache)   # oldest write
        compile_workflow(warm, cache=cache)
        # Backdate both entries, then *hit* the hot one: only the touch
        # performed by load() can save it from eviction below.
        for entry in tmp_path.glob("*.json"):
            os.utime(entry, (1.0, 1.0))
        hot_key = cache.key(hot)
        warm_key = cache.key(warm)
        os.utime(cache._path(warm_key), (2.0, 2.0))
        assert cache.load(hot_key) is not None  # the touch under test
        compile_workflow(cold, cache=cache)     # triggers eviction at cap=2
        assert cache._path(hot_key).exists(), (
            "hot entry was evicted despite being the most recently used"
        )
        assert not cache._path(warm_key).exists()

    def test_touch_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        # A sibling process may evict the entry between our read and the
        # recency touch; the hit must still be returned, not raise.
        import os

        cache = CompileCache(tmp_path)
        compile_workflow(A >> B, cache=cache)
        key = cache.key(A >> B)
        real_utime = os.utime

        def racing_utime(path, *args, **kwargs):
            os.unlink(path)  # the "sibling eviction"
            return real_utime(path, *args, **kwargs)

        monkeypatch.setattr(os, "utime", racing_utime)
        assert cache.load(key) is not None


class TestCorruptEntries:
    def test_corrupt_entry_is_treated_as_miss_and_removed(self, cache):
        goal = A >> B
        compile_workflow(goal, cache=cache)
        (entry,) = cache.directory.glob("*.json")
        entry.write_text("{ not json")
        recompiled = compile_workflow(goal, cache=cache)
        assert recompiled.consistent
        assert cache.hits == 0
        # The recompile stored a fresh, loadable entry over the corpse.
        assert compile_workflow(goal, cache=cache).goal == recompiled.goal
        assert cache.hits == 1

    def test_semantically_corrupt_entry_is_tolerated(self, cache):
        goal = A >> B
        compile_workflow(goal, cache=cache)
        (entry,) = cache.directory.glob("*.json")
        data = json.loads(entry.read_text())
        data["goals"]["roots"]["goal"] = 99999  # dangling node reference
        entry.write_text(json.dumps(data))
        recompiled = compile_workflow(goal, cache=cache)
        assert recompiled.consistent


class TestUncacheableSpecs:
    def test_predicated_test_bypasses_the_cache(self, cache):
        goal = seq(Test("guard", predicate=lambda db: True), A)
        compile_workflow(goal, cache=cache)
        compile_workflow(goal, cache=cache)
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_plain_test_is_cacheable(self, cache):
        goal = seq(Test("guard"), A)
        compile_workflow(goal, cache=cache)
        compile_workflow(goal, cache=cache)
        assert cache.hits == 1


class TestVerifyWithCache:
    def test_verify_property_uses_the_cache(self, cache):
        goal = A >> (B + C)
        result = verify_property(goal, [absent("b")], must("c"), cache=cache)
        assert result.holds
        again = verify_property(goal, [absent("b")], must("c"), cache=cache)
        assert again.holds
        assert cache.hits == 1


SPEC = """
goal: a * (b | c) * d
constraint: precedes(a, d)
property has_a: happens(a)
"""


class TestCLI:
    def _write_spec(self, tmp_path):
        spec = tmp_path / "wf.spec"
        spec.write_text(SPEC)
        return spec

    def test_cache_dir_flag_populates_and_reuses(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cli-cache"
        assert main(["show", str(spec), "--cache-dir", str(cache_dir)]) == 0
        assert len(list(cache_dir.glob("*.json"))) == 1
        assert main(["show", str(spec), "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("compiled:") == 2

    def test_no_cache_flag_wins(self, tmp_path, monkeypatch):
        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cli-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["check", str(spec), "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["verify", str(spec)]) == 0
        assert len(list(cache_dir.glob("*.json"))) == 1


def _hammer_cache(args):
    """Worker: compile a sweep of goals against one shared cache directory.

    Module-level so it pickles across the process boundary. A tiny
    ``max_entries`` forces constant eviction, so concurrent workers race
    stat/unlink against each other's writes — the scenario the cache's
    OSError tolerance exists for.
    """
    directory, worker, rounds = args
    from repro.constraints.algebra import must, order
    from repro.core.compiler import CompileCache, compile_workflow
    from repro.ctr.formulas import atoms

    cache = CompileCache(directory, max_entries=3)
    a, b, c = atoms("a b c")
    for i in range(rounds):
        goal = (a | b) >> c
        constraints = [order("a", "c"), must(f"x{(worker + i) % 7}")]
        # Twice back-to-back: the second compile hits the entry the first
        # just wrote (a fresh entry is never the LRU eviction victim).
        for _ in range(2):
            compiled = compile_workflow(goal, constraints, cache=cache)
            if compiled.consistent:  # every spec here demands a missing event
                return ("inconsistent-expected", worker, i)
    return ("ok", cache.hits)


class TestMultiprocessSharing:
    def test_concurrent_workers_share_one_directory(self, tmp_path):
        import multiprocessing as mp

        directory = tmp_path / "shared"
        jobs = [(str(directory), worker, 12) for worker in range(4)]
        with mp.Pool(4) as pool:
            results = pool.map(_hammer_cache, jobs)
        assert all(r[0] == "ok" for r in results)
        # Eviction kept running throughout the stampede.
        assert len(list(directory.glob("*.json"))) <= 3
        # The shared directory actually served cross-round hits.
        assert sum(r[1] for r in results) > 0

    def test_eviction_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        """A concurrent evictor unlinking between scandir and stat must not
        blow up this process's eviction pass."""
        import pathlib

        cache = CompileCache(tmp_path, max_entries=1)
        a, b = atoms("a b")
        compile_workflow(a >> b, [order("a", "b")], cache=cache)

        real_stat = pathlib.Path.stat

        def racing_stat(self, **kwargs):
            if self.suffix == ".json":
                raise FileNotFoundError(self)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        # Triggers eviction; every stat sees the entry already gone.
        compile_workflow(a >> b, [order("b", "a")], cache=cache)

    def test_unlink_race_is_silent(self, tmp_path, monkeypatch):
        import pathlib

        cache = CompileCache(tmp_path, max_entries=1)
        a, b = atoms("a b")
        compile_workflow(a >> b, [order("a", "b")], cache=cache)

        def racing_unlink(self, *args, **kwargs):
            raise FileNotFoundError(self)

        monkeypatch.setattr(pathlib.Path, "unlink", racing_unlink)
        compile_workflow(a >> b, [order("b", "a")], cache=cache)
