"""Tests for consistency, verification, and redundancy (Theorems 5.8-5.10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import absent, disj, must, order
from repro.constraints.klein import causes, klein_order
from repro.constraints.satisfy import satisfies
from repro.core.verify import (
    is_consistent,
    is_redundant,
    redundant_constraints,
    verify_property,
)
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import traces
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


class TestConsistency:
    def test_consistent(self):
        assert is_consistent((A | B) >> C, [order("a", "b")])

    def test_inconsistent_order_cycle(self):
        assert not is_consistent(A | B, [order("a", "b"), order("b", "a")])

    def test_inconsistent_missing_event(self):
        assert not is_consistent(A >> B, [must("z")])

    def test_unconstrained_always_consistent(self):
        assert is_consistent(A >> B)

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_matches_brute_force(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        brute = any(satisfies(t, constraint) for t in traces(goal))
        assert is_consistent(goal, [constraint]) == brute


class TestVerification:
    def test_property_holds(self):
        # With a ⊗ b serial, "a before b" always holds.
        result = verify_property(A >> B, [], order("a", "b"))
        assert result.holds
        assert result.counterexample is None
        assert bool(result)

    def test_property_fails_with_witness(self):
        result = verify_property(A | B, [], order("a", "b"))
        assert not result.holds
        assert result.witness is not None
        # The witness is a real execution of the workflow violating Φ.
        assert result.witness in traces(A | B)
        assert not satisfies(result.witness, order("a", "b"))

    def test_counterexample_is_most_general(self):
        result = verify_property(A | B | C, [], klein_order("a", "b"))
        assert not result.holds
        # Exactly the executions violating Φ survive in the counterexample.
        violating = {
            t for t in traces(A | B | C) if not satisfies(t, klein_order("a", "b"))
        }
        assert traces(result.counterexample) == violating

    def test_constraints_narrow_the_executions(self):
        # Unconstrained, "c last" fails; constraining b before c first makes
        # a ⊗ (b|c) satisfy "b before c" always? No - but adding the order
        # constraint itself makes the property trivially hold.
        goal = A >> (B | C)
        assert not verify_property(goal, [], order("b", "c")).holds
        assert verify_property(goal, [order("b", "c")], order("b", "c")).holds

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_matches_brute_force(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        background = data.draw(constraints_over(events))
        prop = data.draw(constraints_over(events))
        legal = [t for t in traces(goal) if satisfies(t, background)]
        brute = all(satisfies(t, prop) for t in legal)
        result = verify_property(goal, [background], prop)
        assert result.holds == brute
        if not result.holds:
            assert result.witness in set(legal)
            assert not satisfies(result.witness, prop)


class TestRedundancy:
    def test_implied_constraint_is_redundant(self):
        goal = (A | B) >> C
        constraints = [order("a", "b"), klein_order("a", "b")]
        # Klein's order is implied by the stronger order constraint.
        assert is_redundant(goal, constraints, klein_order("a", "b"))

    def test_independent_constraint_is_not_redundant(self):
        goal = A | B | C
        constraints = [order("a", "b"), causes("b", "c")]
        assert not is_redundant(goal, constraints, causes("b", "c"))

    def test_structurally_implied_constraint(self):
        # The graph itself forces a before b: any constraint saying so is
        # redundant.
        goal = A >> B
        constraints = [klein_order("a", "b"), absent("z")]
        assert is_redundant(goal, constraints, klein_order("a", "b"))

    def test_phi_must_be_member(self):
        with pytest.raises(ValueError):
            is_redundant(A >> B, [must("a")], must("b"))

    def test_redundant_constraints_listing(self):
        goal = A >> B
        constraints = [klein_order("a", "b"), must("a")]
        redundant = redundant_constraints(goal, constraints)
        # Both hold structurally: each is implied even without the other.
        assert klein_order("a", "b") in redundant
        assert must("a") in redundant


class TestRedundancyDuplicates:
    def test_duplicate_occurrence_is_redundant(self):
        # With hash-consing the two ∇a literals are the same object; removing
        # *every* occurrence used to leave nothing behind, so the duplicate
        # was wrongly reported as non-redundant. One copy must remain.
        goal = A >> B
        constraints = [must("a"), must("a")]
        assert is_redundant(goal, constraints, must("a"))

    def test_duplicate_listing_reports_both_occurrences(self):
        goal = A >> B
        constraints = [causes("a", "b"), causes("a", "b")]
        assert redundant_constraints(goal, constraints) == constraints

    def test_single_occurrence_still_uses_the_rest(self):
        # Sanity check the fix removes exactly one: with a lone non-implied
        # constraint the answer stays False.
        goal = A | B | C
        constraints = [order("a", "b"), causes("b", "c")]
        assert not is_redundant(goal, constraints, causes("b", "c"))


class TestWitnessSeed:
    def test_seeded_witness_is_stable_and_violating(self):
        goal = (A | B) >> C
        prop = order("c", "a")
        first = verify_property(goal, [], prop, seed=42)
        second = verify_property(goal, [], prop, seed=42)
        assert not first.holds
        assert first.witness == second.witness
        assert first.witness in traces(goal)
        assert not satisfies(first.witness, prop)

    def test_different_seeds_may_differ_but_all_violate(self):
        goal = (A | B | C) >> D
        prop = must("z")
        for seed in range(5):
            result = verify_property(goal, [], prop, seed=seed)
            assert not result.holds
            assert result.witness in traces(goal)
