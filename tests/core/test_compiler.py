"""Tests for the end-to-end compilation pipeline."""

import pytest

from repro.constraints.algebra import must, order
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import atoms
from repro.ctr.rules import Rule, RuleBase
from repro.errors import InconsistentWorkflowError, UniqueEventError

A, B, C, D = atoms("a b c d")


class TestCompileWorkflow:
    def test_unconstrained(self):
        compiled = compile_workflow(A >> (B | C))
        assert compiled.consistent
        assert compiled.goal == A >> (B | C)

    def test_consistent_spec(self):
        compiled = compile_workflow((A | B) >> C, [order("a", "b")])
        assert compiled.consistent
        assert sorted(compiled.schedules()) == [("a", "b", "c")]

    def test_inconsistent_spec(self):
        compiled = compile_workflow(A >> B, [order("b", "a")])
        assert not compiled.consistent
        assert list(compiled.schedules()) == []

    def test_require_consistent_raises(self):
        compiled = compile_workflow(A >> B, [order("b", "a")])
        with pytest.raises(InconsistentWorkflowError):
            compiled.require_consistent()
        with pytest.raises(InconsistentWorkflowError):
            compiled.scheduler()

    def test_unique_event_violation_detected(self):
        with pytest.raises(UniqueEventError):
            compile_workflow(A >> A)

    def test_rules_are_expanded(self):
        rules = RuleBase([Rule("sub", B + C)])
        compiled = compile_workflow(A >> atoms("sub")[0], rules=rules)
        assert compiled.source == A >> (B + C)

    def test_rule_expansion_checked_for_uniqueness(self):
        rules = RuleBase([Rule("sub", A)])
        with pytest.raises(UniqueEventError):
            compile_workflow(A >> atoms("sub")[0], rules=rules)

    def test_sizes(self):
        compiled = compile_workflow((A | B) >> C, [order("a", "b")])
        assert compiled.applied_size >= compiled.compiled_size > 0

    def test_constraints_recorded(self):
        constraints = [order("a", "b"), must("c")]
        compiled = compile_workflow((A | B) >> C, constraints)
        assert compiled.constraints == tuple(constraints)

    def test_applied_kept_even_when_inconsistent(self):
        compiled = compile_workflow(A >> B, [order("b", "a")])
        # Apply's output (the knotted goal) is retained for inspection.
        assert compiled.applied_size > 0
