"""Tests for the static analysis reports."""

from hypothesis import given, settings

from repro.constraints.algebra import absent, must, order
from repro.core.compiler import compile_workflow
from repro.core.static import (
    analyze,
    dead_activities,
    guaranteed_orderings,
    mandatory_events,
    possible_events,
)
from repro.ctr.formulas import NEG_PATH, Isolated, Possibility, atoms
from repro.ctr.traces import traces
from tests.conftest import unique_event_goals

A, B, C, D = atoms("a b c d")


class TestEventSets:
    def test_possible(self):
        assert possible_events(A >> (B + C)) == {"a", "b", "c"}
        assert possible_events(NEG_PATH) == frozenset()
        assert possible_events(Possibility(A) >> B) == {"b"}

    def test_mandatory(self):
        assert mandatory_events(A >> (B + C)) == {"a"}
        assert mandatory_events(A | B) == {"a", "b"}
        assert mandatory_events((A >> B) + (B >> C)) == {"b"}
        assert mandatory_events(Isolated(A >> B)) == {"a", "b"}

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=5))
    def test_against_trace_semantics(self, goal):
        all_traces = traces(goal)
        expected_possible = {e for t in all_traces for e in t}
        expected_mandatory = (
            set.intersection(*(set(t) for t in all_traces)) if all_traces else set()
        )
        assert possible_events(goal) == expected_possible
        assert mandatory_events(goal) == expected_mandatory


class TestDeadActivities:
    def test_constraint_kills_branch(self):
        compiled = compile_workflow(A >> (B + C), [absent("b")])
        assert dead_activities(compiled) == {"b"}

    def test_nothing_dead_without_constraints(self):
        compiled = compile_workflow(A >> (B + C))
        assert dead_activities(compiled) == frozenset()


class TestOrderings:
    def test_serial(self):
        got = guaranteed_orderings(A >> B >> C)
        assert ("a", "b") in got and ("b", "c") in got and ("a", "c") in got
        assert ("b", "a") not in got

    def test_concurrent_has_no_order(self):
        assert guaranteed_orderings(A | B) == frozenset()

    def test_choice_agreement(self):
        # Both alternatives order a before b: guaranteed.
        agree = (A >> B) + (A >> C >> B)
        assert ("a", "b") in guaranteed_orderings(agree)
        # Alternatives disagree: not guaranteed.
        disagree = (A >> B) + (B >> A)
        assert ("a", "b") not in guaranteed_orderings(disagree)

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4, allow_isolated=False))
    def test_sound_against_traces(self, goal):
        got = guaranteed_orderings(goal)
        for e, f in got:
            for trace in traces(goal):
                if e in trace and f in trace:
                    assert trace.index(e) < trace.index(f)


class TestAnalyze:
    def test_report_fields(self):
        compiled = compile_workflow(A >> (B + C), [absent("b"), must("a")])
        report = analyze(compiled)
        assert report.consistent
        assert report.mandatory == {"a", "c"}
        assert report.optional == frozenset()
        assert report.dead == {"b"}
        assert ("a", "c") in report.orderings

    def test_inconsistent_report(self):
        compiled = compile_workflow(A >> B, [order("b", "a")])
        report = analyze(compiled)
        assert not report.consistent
        assert report.dead == {"a", "b"}

    def test_describe_is_readable(self):
        compiled = compile_workflow(A >> (B + C), [absent("b")])
        text = analyze(compiled).describe()
        assert "mandatory" in text and "dead" in text and "b" in text
