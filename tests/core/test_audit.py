"""Tests for post-hoc execution auditing."""

from repro.constraints.algebra import order
from repro.core.audit import audit_execution
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.ctr.formulas import atoms
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database

A, B, C = atoms("a b c")


def oracle():
    o = TransitionOracle()
    o.register("a", insert_op("r", 1))
    o.register("b", insert_op("r", 2))
    return o


def honest_run():
    compiled = compile_workflow((A | B) >> C, [order("a", "b")])
    engine = WorkflowEngine(compiled, oracle=oracle(), db=Database())
    report = engine.run()
    return compiled, report


class TestCleanRuns:
    def test_honest_run_passes(self):
        compiled, report = honest_run()
        result = audit_execution(
            compiled, report.schedule, report.database, oracle=oracle()
        )
        assert result.ok
        assert "passed" in result.describe()


class TestTamperedRuns:
    def test_forbidden_schedule_detected(self):
        compiled, report = honest_run()
        result = audit_execution(
            compiled, ("b", "a", "c"), report.database, oracle=oracle()
        )
        assert not result.schedule_ok
        assert result.rejection is not None
        assert "precedes(a, b)" in result.describe()

    def test_tampered_state_detected(self):
        compiled, report = honest_run()
        report.database.insert("r", 999)  # someone edited the ledger
        result = audit_execution(
            compiled, report.schedule, report.database, oracle=oracle()
        )
        assert result.schedule_ok
        assert not result.state_ok
        assert "r" in result.state_diff
        assert "state mismatch" in result.describe()

    def test_forged_log_detected(self):
        compiled, report = honest_run()
        db = Database()
        db.insert("r", 1)
        db.insert("r", 2)
        # Relational state matches a real run, but the log is empty.
        result = audit_execution(compiled, report.schedule, db, oracle=oracle())
        assert result.state_ok
        assert not result.log_ok

    def test_wrong_oracle_shows_state_drift(self):
        compiled, report = honest_run()
        different = TransitionOracle()
        different.register("a", insert_op("r", 42))
        result = audit_execution(
            compiled, report.schedule, report.database, oracle=different
        )
        assert not result.state_ok

    def test_initial_state_respected(self):
        compiled, report = honest_run()
        seeded = Database()
        seeded.insert("pre", "x")
        engine = WorkflowEngine(compiled, oracle=oracle(), db=seeded)
        rerun = engine.run()
        start = Database()
        start.insert("pre", "x")
        result = audit_execution(
            compiled, rerun.schedule, rerun.database, oracle=oracle(), initial_db=start
        )
        assert result.ok
