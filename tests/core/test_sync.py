"""Tests for the sync transformation and token factory (Definition 5.3)."""

from repro.core.sync import TokenFactory, sync_order
from repro.ctr.formulas import Possibility, Receive, Send, atoms
from repro.ctr.traces import traces

A, B, C = atoms("a b c")


class TestTokenFactory:
    def test_fresh_tokens_are_distinct(self):
        factory = TokenFactory()
        assert factory.fresh() != factory.fresh()

    def test_prefix(self):
        factory = TokenFactory(prefix="tk")
        assert factory.fresh().startswith("tk")


class TestSyncOrder:
    def test_injects_send_after_alpha(self):
        got = sync_order("a", "b", A | B, "t")
        assert got == (A >> Send("t")) | (Receive("t") >> B)

    def test_rewrites_every_occurrence(self):
        goal = (A >> C) + (C >> A)
        got = sync_order("a", "b", goal, "t")
        assert got == ((A >> Send("t")) >> C) + (C >> (A >> Send("t")))

    def test_semantics_orders_events(self):
        goal = A | B | C
        synced = sync_order("a", "b", goal, "t")
        got = traces(synced)
        assert got == {t for t in traces(goal) if t.index("a") < t.index("b")}

    def test_serial_wrong_order_deadlocks(self):
        synced = sync_order("a", "b", B >> A, "t")
        assert traces(synced) == frozenset()

    def test_possibility_bodies_untouched(self):
        goal = Possibility(A) >> B
        assert sync_order("a", "b", goal, "t") == Possibility(A) >> Receive("t") >> B

    def test_unrelated_events_untouched(self):
        assert sync_order("x", "y", A >> B, "t") == A >> B
