"""Tests for Excise: knot detection and removal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.satisfy import satisfies
from repro.core.apply import apply_all
from repro.core.excise import excise, flat_executable, has_knot
from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    atoms,
    event_names,
)
from repro.ctr.simplify import is_failure
from repro.ctr.traces import is_executable, traces
from repro.workflows.figure1 import example_5_7
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


class TestFlatExecutable:
    def test_plain_goal(self):
        assert flat_executable(A >> B)

    def test_serial_knot(self):
        assert not flat_executable(Receive("t") >> A >> Send("t"))

    def test_parallel_ok(self):
        assert flat_executable((A >> Send("t")) | (Receive("t") >> B))

    def test_cross_knot(self):
        goal = (Receive("x") >> A >> Send("y")) | (Receive("y") >> B >> Send("x"))
        assert not flat_executable(goal)

    def test_receive_without_send_is_dead(self):
        assert not flat_executable(Receive("orphan") >> A)

    def test_send_without_receive_is_fine(self):
        assert flat_executable(Send("unused") >> A)

    def test_isolation_blocks_midway_waits(self):
        # send must happen before the isolated block starts; here the block
        # precedes the send structurally in the same chain: deadlock.
        goal = Isolated(Receive("t") >> A) >> Send("t")
        assert not flat_executable(goal)

    def test_isolation_ok_when_send_first(self):
        goal = (C >> Send("t")) | Isolated(Receive("t") >> A >> B)
        assert flat_executable(goal)

    def test_dead_possibility_body(self):
        assert not flat_executable(Possibility(Receive("never")) >> A)

    def test_empty(self):
        assert flat_executable(EMPTY)
        assert not flat_executable(NEG_PATH)


class TestExcise:
    def test_distributes_over_choice(self):
        dead = Receive("t") >> A >> Send("t")
        assert excise(dead + B) == B

    def test_all_dead_is_negpath(self):
        dead1 = Receive("t") >> A >> Send("t")
        dead2 = Receive("u") >> B >> Send("u")
        assert is_failure(excise(dead1 + dead2))

    def test_example_5_7(self):
        goal, constraints = example_5_7()
        compiled = excise(apply_all(constraints, goal))
        gamma, eta = atoms("gamma eta")
        assert compiled == gamma >> eta

    def test_local_choice_pruning(self):
        dead = Receive("t") >> A >> Send("t")
        goal = C >> (dead + B) >> D
        assert excise(goal) == C >> B >> D

    def test_mandatory_dead_subgoal(self):
        dead = Receive("t") >> A >> Send("t")
        assert is_failure(excise(C >> dead))

    def test_entangled_choice_nonrectangular_hoists(self):
        # alternative a1 works only with b1, a2 only with b2.
        a1 = Send("x") >> A >> Receive("y")
        a2 = Send("y") >> A.__class__("a2") >> Receive("x")
        b1 = Receive("x") >> B >> Send("y")
        b2 = Receive("y") >> B.__class__("b2") >> Send("x")
        goal = (a1 + a2) | (b1 + b2)
        result = excise(goal)
        assert not is_failure(result)
        assert traces(result) == traces(goal)

    def test_has_knot(self):
        dead = Receive("t") >> A >> Send("t")
        assert has_knot(dead + B)
        assert not has_knot(A + B)


class TestExciseProperties:
    @settings(max_examples=80, deadline=None)
    @given(unique_event_goals(max_events=5))
    def test_identity_on_token_free_goals(self, goal):
        # A token-free unique-event goal is always executable.
        assert excise(goal) == goal

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_excise_preserves_traces(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        applied = apply_all([constraint], goal)
        excised = excise(applied)
        if is_failure(excised):
            assert not is_executable(applied)
        else:
            assert traces(excised) == traces(applied)

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_excise_is_idempotent(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        excised = excise(apply_all([constraint], goal))
        assert excise(excised) == excised

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_excised_goals_have_no_dead_alternatives(self, goal, data):
        """Soundness of the compiled representation: every top-level
        alternative of the excised goal is executable."""
        from repro.ctr.formulas import Choice

        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        excised = excise(apply_all([constraint], goal))
        if is_failure(excised):
            return
        alternatives = excised.parts if isinstance(excised, Choice) else (excised,)
        for alternative in alternatives:
            assert is_executable(alternative)
