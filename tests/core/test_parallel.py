"""Tests for the parallel verification layer (DNF disjunct fan-out).

The contract under test: ``jobs=N`` answers exactly what ``jobs=1``
answers — identical consistency booleans, identical
:class:`~repro.core.verify.VerificationResult`s (holds, counterexample
goal, witness), identical redundancy listings — while the fan-out
machinery (chunking, early-exit cancellation, shared compile cache,
pool reuse) stays an implementation detail.
"""

import os
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import absent, conj, disj, must, order
from repro.core.compiler import CompileCache, compile_workflow
from repro.core.parallel import (
    check_consistency,
    compile_parallel,
    resolve_jobs,
    verify_property_parallel,
)
from repro.core.verify import (
    is_consistent,
    is_redundant,
    redundant_constraints,
    verify_properties,
    verify_property,
)
from repro.ctr.formulas import alt, atoms, seq
from repro.ctr.traces import traces
from repro.workflows.figure1 import figure1_constraints, figure1_goal
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")

# A small corpus spanning the interesting shapes: pure order, disjunctive,
# inconsistent, choice-heavy, and the paper's Figure 1 workflow.
CORPUS = [
    ((A | B) >> C, [order("a", "c")]),
    ((A | B) >> C, [disj(order("a", "c"), order("b", "c"))]),
    (alt(A, B) >> C, [disj(must("a"), must("b")), must("c")]),
    (alt(A >> B, C >> D), [conj(must("a"), must("b"))]),
    (A | B, [order("a", "b"), order("b", "a")]),  # inconsistent
    (seq(A, alt(B, C)), [disj(absent("b"), absent("c"))]),
    (figure1_goal(), figure1_constraints()),
]


class TestResolveJobs:
    def test_explicit_values(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_negative_clamps_to_one(self):
        # A negative count is a caller mistake, not a request for every
        # core: clamp rather than surprise-fork os.cpu_count() workers.
        assert resolve_jobs(-1) == 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_env_tolerates_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 4 ")
        assert resolve_jobs(None) == 4
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert resolve_jobs(None) == 1

    def test_env_negative_clamps_and_warns_once(self, monkeypatch):
        from repro.core import parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_warned_jobs_values", set())
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='-2'"):
            assert resolve_jobs(None) == 1
        # The warning fires once per distinct value, not once per call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(None) == 1

    def test_env_non_integer_clamps_and_warns_once(self, monkeypatch):
        from repro.core import parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_warned_jobs_values", set())
        monkeypatch.setenv("REPRO_JOBS", "all")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert resolve_jobs(None) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(None) == 1


class TestConsistencyFanout:
    @pytest.mark.parametrize("goal,constraints", CORPUS)
    def test_sequential_probe_matches_full_compile(self, goal, constraints):
        expected = compile_workflow(goal, constraints).consistent
        assert check_consistency(goal, constraints, jobs=1).consistent == expected

    @pytest.mark.parametrize("goal,constraints", CORPUS)
    def test_parallel_probe_matches_full_compile(self, goal, constraints):
        expected = compile_workflow(goal, constraints).consistent
        assert check_consistency(goal, constraints, jobs=2).consistent == expected

    def test_is_consistent_jobs_knob(self):
        for goal, constraints in CORPUS:
            assert is_consistent(goal, constraints) == is_consistent(
                goal, constraints, jobs=2
            )

    def test_early_exit_prunes_branches(self):
        # First branch (∇a) is already consistent: the remaining branch is
        # never compiled at jobs=1, and the stats say so.
        outcome = check_consistency(A >> B, [disj(must("a"), must("b"))], jobs=1)
        assert outcome.consistent
        assert outcome.branch_index == 0
        assert outcome.stats.examined == 1
        assert outcome.stats.pruned == 1
        assert outcome.stats.early_exit

    def test_inconsistent_probe_examines_everything(self):
        constraints = [disj(must("z"), must("y")), must("a")]
        outcome = check_consistency(A >> B, constraints, jobs=1)
        assert not outcome.consistent
        assert outcome.branch_index is None
        assert outcome.stats.examined == outcome.stats.disjuncts_total == 2
        assert not outcome.stats.early_exit

    def test_parallel_outcome_reports_workers_and_chunks(self):
        constraints = [disj(order("a", "c"), order("b", "c")),
                       disj(must("c"), absent("z"))]
        outcome = check_consistency((A | B) >> C, constraints, jobs=2,
                                    chunk_size=1)
        assert outcome.consistent
        assert outcome.stats.chunks >= 2
        assert outcome.stats.workers  # at least one worker pid reported

    def test_shared_cache_warms_per_branch(self, tmp_path):
        cache_dir = tmp_path / "shared"
        constraints = [disj(must("z"), must("y"))]  # both branches compiled
        check_consistency(A >> B, constraints, jobs=2, cache=cache_dir)
        warm = CompileCache(cache_dir)
        outcome = check_consistency(A >> B, constraints, jobs=1, cache=warm)
        assert not outcome.consistent
        assert warm.hits == 2  # one per disjunct

    def test_obs_counters_recorded(self):
        from repro.obs import Observability

        obs = Observability.enabled(trace=True, metrics=True, record=False)
        check_consistency(A >> B, [disj(must("a"), must("b"))], jobs=1, obs=obs)
        metrics = obs.metrics.to_dict()
        assert metrics["counters"]["parallel.disjuncts_total"] == 2
        assert metrics["counters"]["parallel.disjuncts_pruned"] == 1
        assert metrics["counters"]["parallel.early_exit"] == 1
        assert metrics["gauges"]["parallel.jobs"] == 1
        assert any(span.name == "parallel.consistency"
                   for span in obs.tracer.spans)


class TestVerificationParity:
    PROPS = [order("a", "c"), must("c"), absent("z"), order("c", "a")]

    def test_single_property_identical_results(self):
        goal = (A | B) >> C
        for prop in self.PROPS:
            sequential = verify_property(goal, [], prop)
            fanned = verify_property(goal, [], prop, jobs=2)
            assert sequential == fanned
            # Counterexample goals re-intern across the process boundary:
            # not merely equal but the same canonical object.
            assert sequential.counterexample is fanned.counterexample
            assert sequential.witness == fanned.witness

    def test_failing_property_counterexample_is_canonical(self):
        goal = alt(A, B) >> C
        sequential = verify_property(goal, [], must("a"))
        fanned = verify_property_parallel(goal, [], must("a"), jobs=2)
        assert not sequential.holds and not fanned.holds
        assert sequential.counterexample is fanned.counterexample
        assert sequential.witness == fanned.witness

    def test_batch_matches_sequential_in_order(self):
        goal = (A | B) >> C
        sequential = verify_properties(goal, [], self.PROPS)
        fanned = verify_properties(goal, [], self.PROPS, jobs=2)
        assert sequential == fanned
        assert [r.property for r in fanned] == self.PROPS

    def test_batch_on_figure1(self):
        goal = figure1_goal()
        constraints = figure1_constraints()
        props = list(constraints) + [absent("reject")]
        sequential = verify_properties(goal, constraints, props)
        fanned = verify_properties(goal, constraints, props, jobs=2)
        assert sequential == fanned

    def test_batch_shares_the_compile_cache(self, tmp_path):
        goal = (A | B) >> C
        verify_properties(goal, [], self.PROPS, jobs=2,
                          cache=tmp_path / "cache")
        warm = CompileCache(tmp_path / "cache")
        verify_properties(goal, [], self.PROPS, jobs=1, cache=warm)
        assert warm.hits == len(self.PROPS)

    def test_redundancy_parity(self):
        goal = (A | B) >> C
        constraints = [order("a", "c"), conj(must("a"), must("c")),
                       disj(order("a", "c"), order("b", "c"))]
        assert redundant_constraints(goal, constraints) == \
            redundant_constraints(goal, constraints, jobs=2)

    def test_is_redundant_jobs_knob(self):
        goal = (A | B) >> C
        constraints = [order("a", "c"), conj(must("a"), must("c"))]
        for phi in constraints:
            assert is_redundant(goal, constraints, phi) == \
                is_redundant(goal, constraints, phi, jobs=2)


class TestSeededWitness:
    def test_seed_is_reproducible_across_jobs_and_reruns(self):
        goal = alt(seq(A, B), seq(B, A), seq(C, A))
        prop = order("a", "b")
        results = [
            verify_property(goal, [], prop, seed=99),
            verify_property(goal, [], prop, seed=99),
            verify_property(goal, [], prop, seed=99, jobs=2),
        ]
        assert not results[0].holds
        assert results[0].witness == results[1].witness == results[2].witness

    def test_seeded_witness_is_a_real_violation(self):
        from repro.constraints.satisfy import satisfies

        goal = alt(seq(A, B), seq(B, A))
        prop = order("a", "b")
        result = verify_property(goal, [], prop, seed=7)
        assert result.witness in traces(goal)
        assert not satisfies(result.witness, prop)

    def test_default_stays_lexicographic_minimum(self):
        goal = alt(seq(A, B), seq(B, A))
        unseeded = verify_property(goal, [], order("a", "b"))
        assert unseeded.witness == ("b", "a")


class TestParallelCompile:
    @pytest.mark.parametrize("goal,constraints", CORPUS)
    def test_trace_equivalent_to_sequential(self, goal, constraints):
        sequential = compile_workflow(goal, constraints)
        assembled = compile_parallel(goal, constraints, jobs=2)
        assert assembled.consistent == sequential.consistent
        if sequential.consistent:
            assert traces(assembled.goal) == traces(sequential.goal)

    def test_assembly_is_deterministic(self):
        constraints = [disj(order("a", "c"), order("b", "c"))]
        one = compile_parallel((A | B) >> C, constraints, jobs=2)
        two = compile_parallel((A | B) >> C, constraints, jobs=2)
        assert one.goal is two.goal

    def test_compile_workflow_jobs_knob_routes_here(self):
        constraints = [disj(order("a", "c"), order("b", "c"))]
        via_knob = compile_workflow((A | B) >> C, constraints, jobs=2)
        direct = compile_parallel((A | B) >> C, constraints, jobs=2)
        assert via_knob.goal is direct.goal

    def test_scheduler_runs_on_assembled_goal(self):
        constraints = [disj(order("a", "c"), order("b", "c")), must("c")]
        assembled = compile_parallel((A | B) >> C, constraints, jobs=2)
        schedule = assembled.scheduler().run()
        assert schedule in traces(assembled.source)

    def test_inconsistent_assembles_to_neg_path(self):
        assembled = compile_parallel(A | B, [order("a", "b"), order("b", "a")],
                                     jobs=2)
        assert not assembled.consistent


class TestHypothesisParity:
    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_branch_decomposition_equals_direct_consistency(self, goal, data):
        from repro.constraints.normalize import split_disjuncts
        from repro.ctr.formulas import event_names

        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        split = split_disjuncts([constraint])
        by_branches = any(
            compile_workflow(goal, list(branch)).consistent
            for branch in split.branches()
        )
        assert by_branches == is_consistent(goal, [constraint])

    @settings(max_examples=10, deadline=None)
    @given(unique_event_goals(max_events=3), st.data())
    def test_jobs4_consistency_matches_jobs1(self, goal, data):
        from repro.ctr.formulas import event_names

        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        assert check_consistency(goal, [constraint], jobs=4).consistent == \
            check_consistency(goal, [constraint], jobs=1).consistent


class TestCLI:
    SPEC = """
goal: (a + b) * c
property a_first: precedes(a, c)
property never_z: never(z)
property a_happens: happens(a)
"""

    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.workflow"
        path.write_text(self.SPEC)
        return str(path)

    def test_verify_jobs_output_identical(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._spec_file(tmp_path)
        status_seq = main(["verify", spec])
        out_seq = capsys.readouterr().out
        status_par = main(["verify", spec, "--jobs", "2"])
        out_par = capsys.readouterr().out
        assert status_seq == status_par == 1  # a_happens fails
        assert out_seq == out_par

    def test_verify_witness_seed_flag(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._spec_file(tmp_path)
        assert main(["verify", spec, "--witness-seed", "3"]) == 1
        first = capsys.readouterr().out
        assert main(["verify", spec, "--witness-seed", "3", "--jobs", "2"]) == 1
        assert capsys.readouterr().out == first

    def test_repro_jobs_env_is_the_default(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_JOBS", "2")
        spec = self._spec_file(tmp_path)
        assert main(["verify", spec]) == 1
        out_env = capsys.readouterr().out
        monkeypatch.delenv("REPRO_JOBS")
        assert main(["verify", spec]) == 1
        assert capsys.readouterr().out == out_env
