"""Tests for the saga/compensation encoding (Section 7 failure semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.saga import SagaStep, saga_goal, saga_invariants
from repro.core.verify import verify_property
from repro.ctr.formulas import EMPTY, Atom, atoms
from repro.ctr.traces import traces
from repro.ctr.unique import is_unique_event_goal

PAY = SagaStep("pay")
SHIP = SagaStep("ship")
BILL = SagaStep("bill")


class TestSagaGoal:
    def test_empty_saga(self):
        assert saga_goal([]) is EMPTY

    def test_single_step_traces(self):
        got = traces(saga_goal([PAY]))
        assert got == {
            ("start_pay", "commit_pay"),
            ("start_pay", "abort_pay"),
        }

    def test_two_step_compensation(self):
        got = traces(saga_goal([PAY, SHIP]))
        assert ("start_pay", "commit_pay", "start_ship", "commit_ship") in got
        assert ("start_pay", "commit_pay", "start_ship", "abort_ship", "undo_pay") in got
        assert ("start_pay", "abort_pay") in got
        # An aborted first step compensates nothing.
        assert all("undo_pay" not in t or "abort_ship" in t for t in got)

    def test_three_step_reverse_order(self):
        got = traces(saga_goal([PAY, SHIP, BILL]))
        failing = next(t for t in got if "abort_bill" in t)
        assert failing.index("undo_ship") < failing.index("undo_pay")

    def test_success_and_failure_continuations(self):
        ok, bad = atoms("celebrate apologize")
        got = traces(saga_goal([PAY], on_success=ok, on_failure=bad))
        assert ("start_pay", "commit_pay", "celebrate") in got
        assert ("start_pay", "abort_pay", "apologize") in got

    def test_unique_event(self):
        assert is_unique_event_goal(saga_goal([PAY, SHIP, BILL]))


class TestSagaInvariants:
    def test_all_invariants_verified(self):
        """Theorem 5.9 proves the saga pattern correct, invariant by invariant."""
        steps = [PAY, SHIP, BILL]
        goal = saga_goal(steps)
        for name, invariant in saga_invariants(steps):
            result = verify_property(goal, [], invariant)
            assert result.holds, f"invariant violated: {name} ({result.witness})"

    def test_invariants_hold_on_every_trace(self):
        steps = [PAY, SHIP]
        goal = saga_goal(steps)
        for trace in traces(goal):
            for name, invariant in saga_invariants(steps):
                assert satisfies(trace, invariant), (name, trace)

    def test_broken_saga_is_caught(self):
        """Drop one compensation from the goal: verification must notice."""
        pay, ship = PAY, SHIP
        broken = (
            Atom(pay.start)
            >> (
                (Atom(pay.commit)
                 >> Atom(ship.start)
                 >> (Atom(ship.commit) + Atom(ship.abort)))  # forgot undo_pay!
                + Atom(pay.abort)
            )
        )
        failures = [
            name
            for name, invariant in saga_invariants([pay, ship])
            if not verify_property(broken, [], invariant).holds
        ]
        assert any("undoes committed" in name for name in failures)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4))
    def test_saga_composes_with_compiler(self, n_steps):
        steps = [SagaStep(f"s{i}") for i in range(n_steps)]
        goal = saga_goal(steps)
        invariants = [c for _name, c in saga_invariants(steps)]
        compiled = compile_workflow(goal, invariants)
        # The invariants already hold, so compilation must not prune anything.
        assert compiled.consistent
        assert traces(compiled.goal) == traces(goal)
