"""Property tests for the run-time engine over random specifications."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine, random_strategy
from repro.core.resilience import ChaosOracle
from repro.ctr.formulas import event_names
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database
from repro.ctr.traces import traces
from repro.errors import ExecutionError
from tests.conftest import constraints_over, unique_event_goals


def build_oracle(events):
    oracle = TransitionOracle()
    for event in events:
        oracle.register(event, insert_op("happened", event))
    return oracle


class TestEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=5), st.data())
    def test_random_runs_are_legal_and_logged(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        seed = data.draw(st.integers(0, 2**16))
        db = Database()
        engine = WorkflowEngine(
            compiled,
            oracle=build_oracle(events),
            db=db,
            strategy=random_strategy(seed=seed),
        )
        report = engine.run()

        # The schedule is a legal execution of the source that satisfies
        # the constraint.
        assert report.schedule in traces(goal)
        assert satisfies(report.schedule, constraint)

        # The log replays the schedule, and every fired event left its
        # mark in the database.
        assert db.log.events() == report.schedule
        for event in report.schedule:
            assert db.contains("happened", event)

    @settings(max_examples=30, deadline=None)
    @given(unique_event_goals(max_events=4), st.integers(0, 2**16))
    def test_different_seeds_stay_legal(self, goal, seed):
        compiled = compile_workflow(goal)
        engine = WorkflowEngine(compiled, strategy=random_strategy(seed=seed))
        report = engine.run()
        assert report.completed
        assert report.schedule in traces(goal)


class TestFaultInjectionProperties:
    """For a fault at *every* schedule position, a run either reroutes to a
    legal, constraint-satisfying completion or aborts atomically."""

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=5), st.data())
    def test_every_fault_position_is_survived_or_atomic(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        baseline = WorkflowEngine(compiled, oracle=build_oracle(events)).run()
        for index in range(len(baseline.schedule)):
            db = Database()
            db.insert("pre", "existing")
            pristine = db.snapshot()
            chaos = ChaosOracle(build_oracle(events)).fail_at(index)
            engine = WorkflowEngine(compiled, oracle=chaos, db=db)
            try:
                report = engine.run()
            except ExecutionError:
                # No alternative branch: failure atomicity — the database,
                # including its log, is exactly the pre-run state.
                assert db.snapshot() == pristine
            else:
                # A ∨-alternative existed: the rerouted completion is still
                # a legal execution satisfying the constraint.
                assert report.completed
                assert report.schedule in traces(goal)
                assert satisfies(report.schedule, constraint)
                assert report.reroutes
                assert db.log.events() == report.schedule
