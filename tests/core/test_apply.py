"""Tests for the Apply transformation (Definitions 5.1/5.3/5.5).

The load-bearing property is Propositions 5.2/5.4/5.6: ``Apply(C, T) ≡
T ∧ C``, checked exactly against the trace-semantics oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.satisfy import satisfies
from repro.core.apply import apply_all, apply_constraint
from repro.core.excise import excise
from repro.ctr.formulas import (
    NEG_PATH,
    Choice,
    Isolated,
    Possibility,
    atoms,
    event_names,
)
from repro.ctr.simplify import is_failure
from repro.ctr.traces import traces
from repro.ctr.unique import is_unique_event_goal
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D, ETA, GAMMA, DELTA = atoms("a b c d eta gamma delta")


def compiled_traces(goal, constraints, max_traces=3_000_000):
    compiled = excise(apply_all(list(constraints), goal))
    if is_failure(compiled):
        return frozenset()
    return traces(compiled, max_traces=max_traces)


def oracle_traces(goal, constraints, max_traces=3_000_000):
    return frozenset(
        t
        for t in traces(goal, max_traces=max_traces)
        if all(satisfies(t, c) for c in constraints)
    )


class TestPrimitivePositive:
    def test_on_matching_atom(self):
        assert apply_constraint(must("a"), A) == A

    def test_on_other_atom(self):
        assert is_failure(apply_constraint(must("a"), B))

    def test_selects_choice_branch(self):
        assert apply_constraint(must("a"), A + B) == A

    def test_keeps_shared_branches(self):
        goal = (A >> B) + (B >> A)
        assert apply_constraint(must("a"), goal) == goal

    def test_paper_worked_example(self):
        # Apply(∇α, γ ⊗ (α ∨ β ∨ η) ⊗ δ) = γ ⊗ α ⊗ δ
        goal = GAMMA >> (A + B + ETA) >> DELTA
        assert apply_constraint(must("a"), goal) == GAMMA >> A >> DELTA

    def test_possibility_cannot_discharge(self):
        assert is_failure(apply_constraint(must("a"), Possibility(A)))

    def test_through_isolation(self):
        goal = Isolated(A + B)
        assert apply_constraint(must("a"), goal) == A  # ⊙a simplifies to a


class TestPrimitiveNegative:
    def test_on_matching_atom(self):
        assert is_failure(apply_constraint(absent("a"), A))

    def test_prunes_choice_branch(self):
        assert apply_constraint(absent("a"), A + B) == B

    def test_kills_serial_containing_event(self):
        assert is_failure(apply_constraint(absent("a"), A >> B))

    def test_keeps_possibility(self):
        goal = Possibility(A) >> B
        assert apply_constraint(absent("a"), goal) == goal


class TestOrderConstraints:
    def test_example_4_choice(self):
        # Apply(∇α ⊗ ∇β, γ ∨ (β ⊗ α)) keeps only the β⊗α branch, knotted.
        goal = GAMMA + (B >> A)
        applied = apply_constraint(order("a", "b"), goal)
        assert traces(applied) == frozenset()  # receive before send
        assert is_failure(excise(applied))

    def test_example_4_parallel(self):
        goal = A | B | C
        applied = apply_constraint(order("a", "b"), goal)
        got = traces(applied)
        assert got == {t for t in traces(goal) if t.index("a") < t.index("b")}

    def test_order_requires_both(self):
        assert compiled_traces(A + B, [order("a", "b")]) == frozenset()

    def test_serial_longer_than_two(self):
        goal = A | B | C
        assert compiled_traces(goal, [serial("a", "b", "c")]) == {("a", "b", "c")}


class TestComplexConstraints:
    def test_conjunction_is_sequential_application(self):
        goal = A | B | C
        both = apply_constraint(conj(order("a", "b"), order("b", "c")), goal)
        assert traces(both) == {("a", "b", "c")}

    def test_disjunction_duplicates(self):
        goal = A | B
        applied = apply_constraint(disj(order("a", "b"), order("b", "a")), goal)
        assert isinstance(applied, Choice)
        assert traces(applied) == {("a", "b"), ("b", "a")}

    def test_inconsistent_conjunction(self):
        goal = A >> B
        assert is_failure(
            excise(apply_constraint(conj(order("a", "b"), order("b", "a")), goal))
        )

    def test_constraint_on_missing_event(self):
        assert is_failure(apply_constraint(must("zzz"), A >> B))
        assert apply_constraint(absent("zzz"), A >> B) == A >> B


class TestApplyAll:
    def test_empty_set_is_identity(self):
        goal = A >> (B | C)
        assert apply_all([], goal) == goal

    def test_short_circuits_on_failure(self):
        assert is_failure(apply_all([must("a"), must("zzz"), must("b")], A >> B))


class TestCentralTheorem:
    """Propositions 5.2/5.4/5.6 + Theorem 5.8, property-tested exactly."""

    @settings(max_examples=120, deadline=None)
    @given(unique_event_goals(max_events=5), st.data())
    def test_apply_equals_constrained_execution(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        assert compiled_traces(goal, [constraint]) == oracle_traces(goal, [constraint])

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_multiple_constraints(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraints = [data.draw(constraints_over(events)) for _ in range(2)]
        assert compiled_traces(goal, constraints) == oracle_traces(goal, constraints)

    @settings(max_examples=80, deadline=None)
    @given(unique_event_goals(max_events=5), st.data())
    def test_apply_preserves_unique_events(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        applied = apply_constraint(constraint, goal)
        if not is_failure(applied):
            assert is_unique_event_goal(applied)
