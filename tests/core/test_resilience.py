"""Tests for the resilience layer: policies, clocks, and fault injection."""

import pytest

from repro.core.resilience import (
    ChaosOracle,
    FaultInjected,
    ResiliencePolicy,
    RetryPolicy,
    SystemClock,
    VirtualClock,
)
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database


class TestClocks:
    def test_virtual_clock_advances_on_sleep(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.sleep(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_virtual_clock_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)

    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        before = clock.now()
        clock.sleep(0)  # must not actually block
        assert clock.now() >= before


class TestRetryPolicy:
    def test_default_is_single_attempt(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert not policy.needs_attempt_snapshot

    def test_fixed_backoff(self):
        policy = RetryPolicy.fixed(3, delay=0.2)
        assert [policy.delay(a) for a in (1, 2)] == [0.2, 0.2]

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy.exponential(5, base_delay=0.1, multiplier=2.0,
                                         max_delay=0.3)
        assert [round(policy.delay(a), 3) for a in (1, 2, 3, 4)] == [
            0.1, 0.2, 0.3, 0.3]

    def test_jitter_spreads_delays_within_envelope(self):
        import random

        policy = RetryPolicy(max_attempts=5, base_delay=1.0,
                             multiplier=1.0, jitter=0.5)
        rng = random.Random(42)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        # It actually spreads — a fleet restarting in lockstep must not
        # all land on the same instant.
        assert max(delays) - min(delays) > 0.5

    def test_jitter_is_deterministic_under_a_seeded_rng(self):
        import random

        policy = RetryPolicy(max_attempts=3, base_delay=2.0, jitter=0.3)
        assert ([policy.delay(1, random.Random(7)) for _ in range(3)]
                == [policy.delay(1, random.Random(7)) for _ in range(3)])

    def test_no_rng_means_exact_unjittered_delay(self):
        # Replay determinism: engines that do not opt in get the exact
        # deterministic backoff even on a jittered policy.
        policy = RetryPolicy(max_attempts=3, base_delay=0.4, jitter=0.9)
        assert policy.delay(1) == 0.4
        assert policy.delay(1, None) == 0.4

    def test_jitter_applies_after_the_cap(self):
        import random

        policy = RetryPolicy(max_attempts=9, base_delay=100.0,
                             multiplier=2.0, max_delay=1.0, jitter=0.5)
        rng = random.Random(3)
        delays = [policy.delay(8, rng) for _ in range(100)]
        # Capped to 1.0 first, then jittered: never beyond cap * (1 + j).
        assert all(0.5 <= d <= 1.5 for d in delays)

    def test_jitter_roundtrips_through_dict(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1,
                             multiplier=2.0, jitter=0.25)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_timeout_forces_snapshotting(self):
        assert RetryPolicy(timeout=1.0).needs_attempt_snapshot
        assert RetryPolicy(max_attempts=2).needs_attempt_snapshot

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1},
            {"multiplier": 0},
            {"max_delay": -0.5},
            {"timeout": 0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestResiliencePolicy:
    def test_registry_lookup_and_default(self):
        policies = ResiliencePolicy()
        charge = RetryPolicy.exponential(3, 0.1)
        policies.register("charge", charge)
        assert policies.policy_for("charge") is charge
        assert policies.policy_for("other").max_attempts == 1
        assert "charge" in policies and "other" not in policies
        assert len(policies) == 1

    def test_custom_default(self):
        policies = ResiliencePolicy(default=RetryPolicy(max_attempts=4))
        assert policies.policy_for("anything").max_attempts == 4


class TestChaosOracle:
    def test_fail_event_for_first_attempts(self):
        chaos = ChaosOracle()
        chaos.fail_event("pay", attempts=2)
        db = Database()
        for expected_attempt in (1, 2):
            with pytest.raises(FaultInjected) as info:
                chaos.execute("pay", db)
            assert info.value.attempt == expected_attempt
        chaos.execute("pay", db)  # third attempt succeeds
        assert db.log.events() == ("pay",)

    def test_fail_event_permanently(self):
        chaos = ChaosOracle()
        chaos.fail_event("pay")
        for _ in range(5):
            with pytest.raises(FaultInjected):
                chaos.execute("pay", Database())

    def test_fail_at_schedule_index(self):
        chaos = ChaosOracle()
        chaos.fail_at(1)
        db = Database()
        chaos.execute("a", db)  # index 0
        with pytest.raises(FaultInjected) as info:
            chaos.execute("b", db)  # index 1
        assert info.value.step == 1
        chaos.execute("c", db)  # index 2

    def test_retries_keep_their_schedule_index(self):
        chaos = ChaosOracle()
        chaos.fail_at(0, attempts=1)
        db = Database()
        with pytest.raises(FaultInjected):
            chaos.execute("a", db)
        chaos.execute("a", db)  # attempt 2 of index 0: succeeds
        # A later *new* event gets index 1, not a recycled 0.
        chaos.execute("b", db)
        assert db.log.events() == ("a", "b")

    def test_fail_rate_is_deterministic(self):
        def outcomes(seed):
            chaos = ChaosOracle(seed=seed)
            chaos.fail_rate(0.5)
            out = []
            for i in range(20):
                try:
                    chaos.execute(f"e{i}", Database())
                    out.append(True)
                except FaultInjected:
                    out.append(False)
            return out

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)  # different seed, different faults
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_fail_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosOracle().fail_rate(1.5)

    def test_latency_consumes_clock_time(self):
        clock = VirtualClock()
        chaos = ChaosOracle(clock=clock)
        chaos.add_latency("slow", 2.0)
        chaos.execute("slow", Database())
        assert clock.now() == 2.0

    def test_latency_requires_clock(self):
        with pytest.raises(ValueError):
            ChaosOracle().add_latency("slow", 1.0)

    def test_corrupt_fault_mutates_before_raising(self):
        inner = TransitionOracle()
        inner.register("pay", insert_op("paid", 1))
        chaos = ChaosOracle(inner)
        chaos.fail_event("pay", attempts=1, corrupt=True)
        db = Database()
        with pytest.raises(FaultInjected):
            chaos.execute("pay", db)
        # The dirty write went through: callers must roll it back.
        assert db.contains("paid", 1)

    def test_delegates_registry_interface(self):
        chaos = ChaosOracle()
        chaos.register("a", insert_op("t", 1))
        assert chaos.knows("a") and not chaos.knows("b")
        db = Database()
        successors = chaos.successors("a", db)
        assert len(successors) == 1 and successors[0].contains("t", 1)
        assert not db.contains("t", 1)

    def test_reset_clears_counters_not_plan(self):
        chaos = ChaosOracle()
        chaos.fail_event("a", attempts=1)
        with pytest.raises(FaultInjected):
            chaos.execute("a", Database())
        chaos.execute("a", Database())  # attempt 2: fine
        chaos.reset()
        with pytest.raises(FaultInjected):  # counters back to attempt 1
            chaos.execute("a", Database())
