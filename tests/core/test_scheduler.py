"""Tests for the pro-active scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.scheduler import Scheduler
from repro.constraints.algebra import order
from repro.ctr.formulas import Atom, Isolated, atoms, event_names
from repro.ctr.traces import traces
from repro.errors import IneligibleEventError
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


class TestStepping:
    def test_eligible_initially(self):
        assert Scheduler((A | B) >> C).eligible() == {"a", "b"}

    def test_fire_advances(self):
        s = Scheduler(A >> B)
        s.fire("a")
        assert s.eligible() == {"b"}
        assert s.history == ("a",)

    def test_ineligible_event_raises(self):
        s = Scheduler(A >> B)
        with pytest.raises(IneligibleEventError) as info:
            s.fire("b")
        assert info.value.event == "b"
        assert "a" in info.value.eligible

    def test_can_finish(self):
        s = Scheduler(A)
        assert not s.can_finish()
        s.fire("a")
        assert s.can_finish()
        assert s.finished

    def test_reset(self):
        s = Scheduler(A >> B)
        s.fire("a")
        s.reset()
        assert s.eligible() == {"a"}
        assert s.history == ()

    def test_choice_commitment(self):
        s = Scheduler((A >> B) + (C >> D))
        s.fire("c")
        assert s.eligible() == {"d"}

    def test_shared_choice_keeps_worlds(self):
        # Firing 'a' is compatible with both alternatives; 'b' then 'c' vs
        # 'c' must both remain possible.
        goal = (A >> B >> C) + (A >> C)
        s = Scheduler(goal)
        s.fire("a")
        assert s.eligible() == {"b", "c"}
        s.fire("c")
        assert s.can_finish()

    def test_isolation_scheduling(self):
        s = Scheduler(Isolated(A >> B) | C)
        s.fire("a")
        assert s.eligible() == {"b"}  # block is running, c must wait
        s.fire("b")
        assert s.eligible() == {"c"}


class TestMarkRewind:
    def test_rewind_restores_state_and_history(self):
        s = Scheduler((A | B) >> (C + D))
        s.fire("a")
        mark = s.mark()
        s.fire("b")
        s.fire("c")
        assert s.history == ("a", "b", "c")
        s.rewind(mark)
        assert s.history == ("a",)
        assert s.eligible() == {"b"}
        s.fire("b")
        assert s.eligible() == {"c", "d"}

    def test_rewind_to_origin(self):
        s = Scheduler(A >> B)
        origin = s.mark()
        s.fire("a")
        s.rewind(origin)
        assert s.history == ()
        assert s.eligible() == {"a"}


class TestViability:
    def test_viable_with_empty_avoid_everywhere(self):
        s = Scheduler((A | B) >> (C + D))
        assert s.viable(frozenset())
        assert s.viable_events(frozenset()) == s.eligible()

    def test_viable_events_filters_dead_branch(self):
        s = Scheduler(A >> (C + D))
        s.fire("a")
        assert s.eligible() == {"c", "d"}
        assert s.viable_events(frozenset({"c"})) == {"d"}
        assert s.viable(frozenset({"c"}))

    def test_not_viable_when_every_path_needs_the_event(self):
        s = Scheduler(A >> B >> C)
        assert not s.viable(frozenset({"b"}))
        assert s.viable_events(frozenset({"b"})) == frozenset()

    def test_viability_after_commitment(self):
        # Before choosing, 'a' is avoidable (take the d-branch); once
        # committed to the c-branch it no longer is. Past events do not
        # count: avoiding the already-fired 'c' stays viable.
        s = Scheduler((C >> A) + (D >> B))
        assert s.viable(frozenset({"a"}))
        s.fire("c")
        assert not s.viable(frozenset({"a"}))
        assert s.viable(frozenset({"c", "d"}))

    def test_viability_on_concurrent_branches(self):
        s = Scheduler((A + B) | (C + D))
        avoid = frozenset({"a", "c"})
        assert s.viable(avoid)
        assert s.viable_events(avoid) == {"b", "d"}

    def test_viability_on_deep_chains(self):
        # The viability walk is iterative: a long forced chain must not
        # hit the interpreter recursion limit.
        from repro.ctr.formulas import seq as seq_

        chain = seq_(*(Atom(f"x{i}") for i in range(3000)))
        s = Scheduler(chain)
        assert s.viable(frozenset())
        assert not s.viable(frozenset({"x2999"}))

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_viable_events_matches_exhaustive_traces(self, goal):
        # An event is viable iff some complete trace from here avoids the
        # avoided set; check against the enumerable ground truth.
        import itertools

        events = sorted(event_names(goal))
        s = Scheduler(goal)
        for avoid_pair in itertools.chain([()], itertools.combinations(events, 1)):
            avoid = frozenset(avoid_pair)
            expected = {
                t[0] for t in traces(goal) if t and not (set(t) & avoid)
            }
            assert s.viable_events(avoid) == expected


class TestRun:
    def test_default_strategy_is_lexicographic(self):
        assert Scheduler(B | A | C).run() == ("a", "b", "c")

    def test_custom_strategy(self):
        schedule = Scheduler(B | A | C).run(strategy=max)
        assert schedule == ("c", "b", "a")

    def test_tokens_enforced_during_run(self):
        compiled = compile_workflow(A | B, [order("b", "a")])
        assert compiled.scheduler().run() == ("b", "a")


class TestEnumeration:
    def test_enumerates_all_traces(self):
        goal = (A | B) >> (C + D)
        got = set(Scheduler(goal).enumerate_schedules())
        assert got == set(traces(goal))

    def test_enumeration_respects_limit(self):
        from repro.ctr.traces import TooManyTracesError

        goal = A | B | C | D
        with pytest.raises(TooManyTracesError):
            list(Scheduler(goal).enumerate_schedules(limit=3))

    @settings(max_examples=60, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_scheduler_sound_and_complete(self, goal):
        got = set(Scheduler(goal).enumerate_schedules())
        assert got == set(traces(goal))


class TestCompiledNeverStuck:
    """On an excised goal, the scheduler can always finish what it starts."""

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_greedy_run_completes(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        schedule = compiled.scheduler().run()
        assert schedule in traces(goal)
        assert satisfies(schedule, constraint)
