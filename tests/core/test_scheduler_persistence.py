"""Tests for scheduler checkpoint/resume."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.core.scheduler import Scheduler
from repro.ctr.formulas import Isolated, atoms, event_names
from repro.graph.generators import serial_chain
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


def round_trip(snapshot: dict) -> dict:
    return json.loads(json.dumps(snapshot))


class TestSnapshotRestore:
    def test_mid_run_resume(self):
        compiled = compile_workflow((A | B) >> (C + D), [order("a", "b")])
        scheduler = compiled.scheduler()
        scheduler.fire("a")
        snapshot = round_trip(scheduler.snapshot())

        resumed = compiled.scheduler()
        resumed.restore(snapshot)
        assert resumed.history == ("a",)
        assert resumed.eligible() == scheduler.eligible() == {"b"}
        resumed.fire("b")
        resumed.fire("c")
        assert resumed.can_finish()

    def test_snapshot_is_json_serializable(self):
        scheduler = Scheduler(serial_chain(10))
        for _ in range(4):
            scheduler.fire(min(scheduler.eligible()))
        text = json.dumps(scheduler.snapshot())
        assert "e5" in text

    def test_resume_mid_isolated_region(self):
        scheduler = Scheduler(Isolated(A >> B) | C)
        scheduler.fire("a")
        snapshot = round_trip(scheduler.snapshot())
        resumed = Scheduler(Isolated(A >> B) | C)
        resumed.restore(snapshot)
        # Isolation must survive the round trip: c still has to wait.
        assert resumed.eligible() == {"b"}
        resumed.fire("b")
        assert resumed.eligible() == {"c"}

    def test_tokens_survive(self):
        compiled = compile_workflow(A | B, [order("a", "b")])
        scheduler = compiled.scheduler()
        scheduler.fire("a")
        resumed = compiled.scheduler()
        resumed.restore(round_trip(scheduler.snapshot()))
        assert resumed.eligible() == {"b"}

    def test_initial_snapshot(self):
        scheduler = Scheduler(A >> B)
        resumed = Scheduler(A >> B)
        resumed.restore(round_trip(scheduler.snapshot()))
        assert resumed.eligible() == {"a"}


class TestEquivalenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_resumed_scheduler_matches_original(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        scheduler = compiled.scheduler()
        steps = data.draw(st.integers(0, 3))
        for _ in range(steps):
            eligible = scheduler.eligible()
            if not eligible:
                break
            scheduler.fire(min(eligible))

        resumed = compiled.scheduler()
        resumed.restore(round_trip(scheduler.snapshot()))
        assert resumed.eligible() == scheduler.eligible()
        assert resumed.can_finish() == scheduler.can_finish()
        if not scheduler.finished:
            assert resumed.run() == scheduler.run()
