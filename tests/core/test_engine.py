"""Tests for the workflow run-time engine."""

import pytest

from repro.constraints.algebra import order
from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.engine import ExecutionReport, WorkflowEngine, random_strategy
from repro.core.resilience import (
    ChaosOracle,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)
from repro.core.saga import SagaStep, saga_goal, saga_invariants
from repro.ctr.formulas import Atom, Test, atoms, seq
from repro.ctr.traces import traces
from repro.db.oracle import TransitionOracle, delete_op, insert_op
from repro.db.state import Database
from repro.errors import ExecutionError, RetryExhaustedError, SchedulingError

A, B, C = atoms("a b c")


def make_engine(goal, constraints=(), oracle=None, db=None, strategy=None,
                policies=None, clock=None):
    compiled = compile_workflow(goal, list(constraints))
    return WorkflowEngine(compiled, oracle=oracle, db=db, strategy=strategy,
                          policies=policies, clock=clock)


class TestExecution:
    def test_events_are_logged(self):
        engine = make_engine(A >> B)
        report = engine.run()
        assert report.completed
        assert report.schedule == ("a", "b")
        assert report.database.log.events() == ("a", "b")

    def test_updates_are_applied(self):
        oracle = TransitionOracle()
        oracle.register("a", insert_op("orders", 1, "open"))
        oracle.register("b", delete_op("orders", 1, "open"))
        engine = make_engine(A >> B, oracle=oracle)
        report = engine.run()
        assert report.database.query("orders") == []

    def test_constraints_shape_execution(self):
        engine = make_engine(B | A, [order("b", "a")])
        report = engine.run()
        assert report.schedule == ("b", "a")

    def test_random_strategy_still_legal(self):
        engine = make_engine((A | B) >> C, [order("a", "b")],
                             strategy=random_strategy(seed=7))
        report = engine.run()
        assert report.schedule == ("a", "b", "c")

    def test_report_truthiness(self):
        report = ExecutionReport(schedule=(), database=Database(), completed=True)
        assert report
        assert not ExecutionReport(schedule=(), database=Database(), completed=False)


class TestTransitionConditions:
    def test_predicate_gates_branch_at_runtime(self):
        low = Test("low_stock", predicate=lambda db: db.contains("stock", "low"))
        ok = Test("stock_ok", predicate=lambda db: not db.contains("stock", "low"))
        goal = A >> (seq(low, B) + seq(ok, C))

        db = Database()
        db.insert("stock", "low")
        engine = make_engine(goal, db=db)
        report = engine.run()
        assert report.schedule == ("a", "b")

        engine2 = make_engine(goal, db=Database())
        assert engine2.run().schedule == ("a", "c")

    def test_condition_reacts_to_updates(self):
        # The 'a' activity inserts the flag the later test reads.
        flag = Test("flagged", predicate=lambda db: db.contains("flag", "on"))
        unflagged = Test("not_flagged", predicate=lambda db: not db.contains("flag", "on"))
        goal = A >> (seq(flag, B) + seq(unflagged, C))
        oracle = TransitionOracle()
        oracle.register("a", insert_op("flag", "on"))
        engine = make_engine(goal, oracle=oracle)
        assert engine.run().schedule == ("a", "b")


class TestFailureAtomicity:
    def test_failed_activity_rolls_back(self):
        def boom(db):
            raise RuntimeError("disk on fire")

        oracle = TransitionOracle()
        oracle.register("a", insert_op("t", 1))
        oracle.register("b", boom)
        db = Database()
        db.insert("pre", "existing")
        engine = make_engine(A >> B, oracle=oracle, db=db)
        with pytest.raises(ExecutionError) as info:
            engine.run()
        assert info.value.activity == "b"
        # Rollback: the 'a' insert and all log records are gone...
        assert not db.contains("t", 1)
        assert db.log.events() == ()
        # ...but pre-existing data survives.
        assert db.contains("pre", "existing")


class TestStepwise:
    def test_manual_driving(self):
        engine = make_engine((A | B) >> C, [order("a", "b")])
        assert engine.eligible() == {"a"}
        engine.fire("a")
        assert engine.eligible() == {"b"}
        engine.fire("b")
        engine.fire("c")
        assert engine.db.log.events() == ("a", "b", "c")

    def test_failed_fire_rewinds_the_schedule(self):
        chaos = ChaosOracle()
        chaos.fail_event("a", attempts=1)
        engine = make_engine(A >> B, oracle=chaos)
        with pytest.raises(RetryExhaustedError):
            engine.fire("a")
        # The event did not happen: it is still eligible and can be retried.
        assert engine.eligible() == {"a"}
        engine.fire("a")
        engine.fire("b")
        assert engine.db.log.events() == ("a", "b")


class TestRollbackOnAnyFailure:
    """Regression: every abnormal exit restores the checkpoint, not just
    ExecutionError (the seed engine leaked partial state on SchedulingError)."""

    def test_scheduling_error_restores_checkpoint(self):
        gate = Test("gate", predicate=lambda db: db.contains("flag", "on"))
        oracle = TransitionOracle()
        oracle.register("a", insert_op("t", 1))
        db = Database()
        db.insert("pre", "existing")
        engine = make_engine(A >> seq(gate, B), oracle=oracle, db=db)
        with pytest.raises(SchedulingError):
            engine.run()  # 'a' fires, then the false gate leaves it stuck
        assert not db.contains("t", 1)
        assert db.log.events() == ()
        assert db.contains("pre", "existing")

    def test_step_limit_restores_checkpoint(self):
        oracle = TransitionOracle()
        oracle.register("a", insert_op("t", 1))
        db = Database()
        engine = make_engine(A >> B >> C, oracle=oracle, db=db)
        with pytest.raises(SchedulingError):
            engine.run(max_steps=1)
        assert not db.contains("t", 1)
        assert db.log.events() == ()


class TestFailureDiagnostics:
    """Regression: execution errors carry the partial schedule and the
    eligible set at the point of failure."""

    def test_execution_error_carries_context(self):
        def boom(db):
            raise RuntimeError("disk on fire")

        oracle = TransitionOracle()
        oracle.register("b", boom)
        engine = make_engine(A >> B >> C, oracle=oracle)
        with pytest.raises(ExecutionError) as info:
            engine.run()
        assert info.value.schedule == ("a", "b")
        assert info.value.eligible == frozenset({"b"})


class TestRetry:
    def test_transient_failure_retried_with_backoff(self):
        oracle = TransitionOracle()
        oracle.register("b", insert_op("t", 1))
        chaos = ChaosOracle(oracle)
        chaos.fail_event("b", attempts=2, corrupt=True)
        policies = ResiliencePolicy()
        policies.register("b", RetryPolicy.exponential(3, base_delay=0.1))
        clock = VirtualClock()
        engine = make_engine(A >> B, oracle=chaos, policies=policies,
                             clock=clock)
        report = engine.run()
        assert report.completed
        assert report.schedule == ("a", "b")
        assert report.attempts == {"a": 1, "b": 3}
        assert report.retries == 2
        assert report.failures_survived == 2
        # Exponential backoff on the virtual clock: 0.1 + 0.2.
        assert report.elapsed == pytest.approx(0.3)
        # Corrupt attempts wrote dirty state; per-attempt rollback hid it.
        assert report.database.log.events() == ("a", "b")
        assert "retried: b x3" in report.summary()

    def test_retries_exhausted_raises(self):
        chaos = ChaosOracle()
        chaos.fail_event("a")
        policies = ResiliencePolicy(default=RetryPolicy.fixed(2, delay=0.5))
        engine = make_engine(Atom("a"), oracle=chaos, policies=policies)
        with pytest.raises(RetryExhaustedError) as info:
            engine.run()
        assert info.value.activity == "a"
        assert info.value.attempts == 2

    def test_timeout_counts_as_failure_and_retries(self):
        clock = VirtualClock()
        calls = {"n": 0}

        def slow_once(db):
            calls["n"] += 1
            if calls["n"] == 1:
                clock.sleep(5.0)  # simulated long-running first attempt

        oracle = TransitionOracle()
        oracle.register("a", slow_once)
        policies = ResiliencePolicy()
        policies.register("a", RetryPolicy(max_attempts=2, timeout=1.0))
        engine = make_engine(A >> B, oracle=oracle, policies=policies,
                             clock=clock)
        report = engine.run()
        assert report.attempts["a"] == 2
        assert report.failures[0].kind == "ActivityTimeoutError"
        # The timed-out attempt's log record was rolled back.
        assert report.database.log.events() == ("a", "b")

    def test_summary_reports_backoff_slept(self):
        chaos = ChaosOracle()
        chaos.fail_event("a", attempts=2)
        policies = ResiliencePolicy(
            default=RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0)
        )
        clock = VirtualClock()
        engine = make_engine(A >> B, oracle=chaos, policies=policies,
                             clock=clock)
        report = engine.run()
        # Failed attempts 1 and 2 back off 0.1s and 0.2s before succeeding.
        assert report.backoff == pytest.approx(0.3)
        assert "backoff: 0.3s slept between retries" in report.summary()

    def test_summary_names_reroute_target(self):
        chaos = ChaosOracle()
        chaos.fail_event("a")
        engine = make_engine((A + B) >> C, oracle=chaos)
        report = engine.run()
        assert report.schedule == ("b", "c")
        assert report.reroutes[0].target == "b"
        assert "via 'b'" in report.summary()

    def test_untroubled_run_reports_zero_backoff(self):
        report = make_engine(A >> B).run()
        assert report.backoff == 0.0
        assert report.summary() == ""


class TestFailover:
    """Acceptance: a workflow with a viable ∨-alternative completes via
    choice-branch failover, and the result is a legal, constraint-
    satisfying schedule."""

    def test_failover_to_alternative_branch(self):
        d = Atom("d")
        goal = (A | B) >> (C + d)
        constraint = order("a", "b")
        chaos = ChaosOracle()
        chaos.fail_event("c")
        engine = make_engine(goal, [constraint], oracle=chaos)
        report = engine.run()
        assert report.completed
        assert report.schedule == ("a", "b", "d")
        assert report.schedule in traces(goal)
        assert satisfies(report.schedule, constraint)
        assert len(report.reroutes) == 1
        assert report.reroutes[0].failed_event == "c"
        assert engine.dead_events == {"c"}

    def test_failover_rolls_back_the_discarded_branch(self):
        d = Atom("d")
        goal = A >> ((C >> B) + d)
        oracle = TransitionOracle()
        oracle.register("c", insert_op("branch", "taken"))
        chaos = ChaosOracle(oracle)
        chaos.fail_event("b")
        engine = make_engine(goal, oracle=chaos)
        report = engine.run()
        assert report.schedule == ("a", "d")
        # 'c' fired before 'b' died; the reroute rolled its effects back.
        assert not report.database.contains("branch", "taken")
        assert report.database.log.events() == ("a", "d")
        assert report.reroutes[0].discarded == ("c",)
        assert report.reroutes[0].resumed_depth == 1

    def test_retry_then_failover(self):
        d = Atom("d")
        chaos = ChaosOracle()
        chaos.fail_event("c")  # permanent: outlives the retry budget
        policies = ResiliencePolicy(
            default=RetryPolicy.fixed(3, delay=0.1))
        clock = VirtualClock()
        engine = make_engine(A >> (C + d), oracle=chaos, policies=policies,
                             clock=clock)
        report = engine.run()
        assert report.schedule == ("a", "d")
        assert report.attempts["c"] == 3
        assert len(report.reroutes) == 1
        assert report.elapsed == pytest.approx(0.2)  # two backoff sleeps

    def test_saga_compensates_committed_steps(self):
        """Acceptance: saga compensation rides on the same mechanism —
        the abort branch *is* the ∨-alternative."""
        steps = [SagaStep("pay"), SagaStep("ship")]
        oracle = TransitionOracle()
        oracle.register("commit_pay", insert_op("paid", "order-1"))
        oracle.register("undo_pay", delete_op("paid", "order-1"))
        chaos = ChaosOracle(oracle)
        chaos.fail_event("commit_ship")

        def optimistic(eligible, db):
            # Prefer commits; first_strategy would pick abort_* by name.
            commits = [e for e in eligible if not e.startswith("abort_")]
            return min(commits or sorted(eligible))

        engine = make_engine(saga_goal(steps), oracle=chaos,
                             strategy=optimistic)
        report = engine.run()
        assert report.schedule == (
            "start_pay", "commit_pay", "start_ship", "abort_ship", "undo_pay")
        # The committed payment was *compensated*, not blindly rolled back:
        # commit_pay stays in the log, undo_pay reversed its effect.
        assert report.database.query("paid") == []
        assert report.database.log.events() == report.schedule
        for name, invariant in saga_invariants(steps):
            assert satisfies(report.schedule, invariant), name

    def test_no_alternative_aborts_atomically(self):
        """Acceptance: with no ∨-alternative anywhere, the run aborts and
        the database (including the log) returns to the pre-run state."""
        oracle = TransitionOracle()
        oracle.register("a", insert_op("t", 1))
        chaos = ChaosOracle(oracle)
        chaos.fail_event("b")
        db = Database()
        db.insert("pre", "existing")
        engine = make_engine(A >> B >> C, oracle=chaos, db=db)
        with pytest.raises(RetryExhaustedError) as info:
            engine.run()
        assert info.value.dead == frozenset({"b"})
        assert "no alternative" in str(info.value)
        assert info.value.schedule == ("a", "b")
        assert not db.contains("t", 1)
        assert db.log.events() == ()
        assert db.contains("pre", "existing")
