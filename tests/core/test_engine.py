"""Tests for the workflow run-time engine."""

import pytest

from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.core.engine import ExecutionReport, WorkflowEngine, random_strategy
from repro.ctr.formulas import Atom, Test, atoms, seq
from repro.db.oracle import TransitionOracle, delete_op, insert_op
from repro.db.state import Database
from repro.errors import ExecutionError

A, B, C = atoms("a b c")


def make_engine(goal, constraints=(), oracle=None, db=None, strategy=None):
    compiled = compile_workflow(goal, list(constraints))
    return WorkflowEngine(compiled, oracle=oracle, db=db, strategy=strategy)


class TestExecution:
    def test_events_are_logged(self):
        engine = make_engine(A >> B)
        report = engine.run()
        assert report.completed
        assert report.schedule == ("a", "b")
        assert report.database.log.events() == ("a", "b")

    def test_updates_are_applied(self):
        oracle = TransitionOracle()
        oracle.register("a", insert_op("orders", 1, "open"))
        oracle.register("b", delete_op("orders", 1, "open"))
        engine = make_engine(A >> B, oracle=oracle)
        report = engine.run()
        assert report.database.query("orders") == []

    def test_constraints_shape_execution(self):
        engine = make_engine(B | A, [order("b", "a")])
        report = engine.run()
        assert report.schedule == ("b", "a")

    def test_random_strategy_still_legal(self):
        engine = make_engine((A | B) >> C, [order("a", "b")],
                             strategy=random_strategy(seed=7))
        report = engine.run()
        assert report.schedule == ("a", "b", "c")

    def test_report_truthiness(self):
        report = ExecutionReport(schedule=(), database=Database(), completed=True)
        assert report
        assert not ExecutionReport(schedule=(), database=Database(), completed=False)


class TestTransitionConditions:
    def test_predicate_gates_branch_at_runtime(self):
        low = Test("low_stock", predicate=lambda db: db.contains("stock", "low"))
        ok = Test("stock_ok", predicate=lambda db: not db.contains("stock", "low"))
        goal = A >> (seq(low, B) + seq(ok, C))

        db = Database()
        db.insert("stock", "low")
        engine = make_engine(goal, db=db)
        report = engine.run()
        assert report.schedule == ("a", "b")

        engine2 = make_engine(goal, db=Database())
        assert engine2.run().schedule == ("a", "c")

    def test_condition_reacts_to_updates(self):
        # The 'a' activity inserts the flag the later test reads.
        flag = Test("flagged", predicate=lambda db: db.contains("flag", "on"))
        unflagged = Test("not_flagged", predicate=lambda db: not db.contains("flag", "on"))
        goal = A >> (seq(flag, B) + seq(unflagged, C))
        oracle = TransitionOracle()
        oracle.register("a", insert_op("flag", "on"))
        engine = make_engine(goal, oracle=oracle)
        assert engine.run().schedule == ("a", "b")


class TestFailureAtomicity:
    def test_failed_activity_rolls_back(self):
        def boom(db):
            raise RuntimeError("disk on fire")

        oracle = TransitionOracle()
        oracle.register("a", insert_op("t", 1))
        oracle.register("b", boom)
        db = Database()
        db.insert("pre", "existing")
        engine = make_engine(A >> B, oracle=oracle, db=db)
        with pytest.raises(ExecutionError) as info:
            engine.run()
        assert info.value.activity == "b"
        # Rollback: the 'a' insert and all log records are gone...
        assert not db.contains("t", 1)
        assert db.log.events() == ()
        # ...but pre-existing data survives.
        assert db.contains("pre", "existing")


class TestStepwise:
    def test_manual_driving(self):
        engine = make_engine((A | B) >> C, [order("a", "b")])
        assert engine.eligible() == {"a"}
        engine.fire("a")
        assert engine.eligible() == {"b"}
        engine.fire("b")
        engine.fire("c")
        assert engine.db.log.events() == ("a", "b", "c")
