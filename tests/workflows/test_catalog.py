"""Tests for the claims and release workflow specifications."""

from repro.constraints.algebra import absent, disj, must, order
from repro.constraints.klein import klein_order
from repro.core.compiler import compile_workflow
from repro.core.static import analyze
from repro.core.verify import is_redundant, verify_property
from repro.workflows.claims import claims_constraints, claims_goal, claims_specification
from repro.workflows.release import (
    release_constraints,
    release_goal,
    release_specification,
)


class TestClaims:
    def test_consistent(self):
        goal, constraints = claims_specification()
        assert compile_workflow(goal, constraints).consistent

    def test_fraud_is_never_paid(self):
        goal, constraints = claims_specification()
        prop = disj(absent("flag_fraud"), absent("transfer_funds"))
        assert verify_property(goal, constraints, prop).holds

    def test_fraud_forces_denial_letter(self):
        goal, constraints = claims_specification()
        prop = disj(absent("flag_fraud"), must("send_denial_letter"))
        assert verify_property(goal, constraints, prop).holds

    def test_four_eyes_before_payment(self):
        goal, constraints = claims_specification()
        for schedule in compile_workflow(goal, constraints).schedules(limit=200_000):
            if "authorize_payment" in schedule:
                assert schedule.index("verify_policy") < schedule.index("authorize_payment")
                assert schedule.index("appraise") < schedule.index("authorize_payment")

    def test_payment_is_isolated(self):
        goal, constraints = claims_specification()
        for schedule in compile_workflow(goal, constraints).schedules(limit=200_000):
            if "authorize_payment" in schedule:
                i = schedule.index("authorize_payment")
                assert schedule[i + 1] == "transfer_funds"

    def test_not_every_claim_settles(self):
        goal, constraints = claims_specification()
        result = verify_property(goal, constraints, must("transfer_funds"))
        assert not result.holds
        assert "deny" in result.witness

    def test_static_report(self):
        goal, constraints = claims_specification()
        report = analyze(compile_workflow(goal, constraints))
        assert "register" in report.mandatory
        assert "appeal" in report.optional
        assert not report.dead


class TestRelease:
    def test_consistent(self):
        goal, constraints = release_specification()
        assert compile_workflow(goal, constraints).consistent

    def test_review_gates_production(self):
        goal, constraints = release_specification()
        prop = disj(absent("promote"), order("review_signoff", "promote"))
        assert verify_property(goal, constraints, prop).holds

    def test_no_announcement_after_rollback(self):
        goal, constraints = release_specification()
        for schedule in compile_workflow(goal, constraints).schedules(limit=200_000):
            assert not ("rollback" in schedule and "announce" in schedule)

    def test_klein_order_is_redundant(self):
        # The graph itself orders canary before promote.
        goal, constraints = release_specification()
        assert is_redundant(goal, constraints, klein_order("canary", "promote"))

    def test_review_rules_are_not_redundant(self):
        goal, constraints = release_specification()
        review_rule = disj(absent("canary"), order("review_signoff", "canary"))
        assert not is_redundant(goal, constraints, review_rule)

    def test_direct_deploy_skips_canary(self):
        goal, constraints = release_specification()
        schedules = list(compile_workflow(goal, constraints).schedules(limit=200_000))
        direct = [s for s in schedules if "direct_deploy" in s]
        assert direct
        assert all("canary" not in s for s in direct)
