"""Tests for the workflow control-flow pattern catalogue."""

import pytest

from repro.constraints.algebra import must
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import atoms, seq
from repro.ctr.traces import traces
from repro.ctr.unique import is_unique_event_goal
from repro.workflows.patterns import (
    deferred_choice,
    exclusive_choice,
    interleaved_routing,
    milestone,
    multi_choice,
    parallel_split,
    sequence,
)

A, B, C, D = atoms("a b c d")


class TestBasicPatterns:
    def test_sequence(self):
        assert traces(sequence(A, B, C)) == {("a", "b", "c")}

    def test_parallel_split_synchronizes(self):
        goal = seq(parallel_split(A, B), C)
        got = traces(goal)
        # c only after BOTH branches completed (synchronization).
        assert got == {("a", "b", "c"), ("b", "a", "c")}

    def test_exclusive_choice(self):
        assert traces(exclusive_choice(A, B, C)) == {("a",), ("b",), ("c",)}


class TestMultiChoice:
    def test_all_nonempty_subsets(self):
        got = traces(multi_choice(A, B))
        assert got == {("a",), ("b",), ("a", "b"), ("b", "a")}

    def test_synchronizing_merge(self):
        goal = seq(multi_choice(A, B), C)
        got = traces(goal)
        assert ("a", "c") in got
        assert ("a", "b", "c") in got
        # The merge always waits for every chosen branch.
        assert all(t[-1] == "c" for t in got)

    def test_three_branches_subset_count(self):
        goal = multi_choice(A, B, C)
        singles = {t for t in traces(goal) if len(t) == 1}
        assert singles == {("a",), ("b",), ("c",)}
        assert ("a", "b", "c") in traces(goal)

    def test_needs_a_branch(self):
        with pytest.raises(ValueError):
            multi_choice()

    def test_unique_event(self):
        assert is_unique_event_goal(multi_choice(A, B, C))


class TestInterleavedRouting:
    def test_compound_activities_never_overlap(self):
        got = traces(interleaved_routing(A >> B, C >> D))
        assert got == {("a", "b", "c", "d"), ("c", "d", "a", "b")}

    def test_single_events_fully_interleave(self):
        # Single steps are atomic anyway: same as parallel.
        assert traces(interleaved_routing(A, B)) == {("a", "b"), ("b", "a")}


class TestDeferredChoice:
    def test_scheduler_defers_until_commitment(self):
        from repro.core.scheduler import Scheduler

        goal = deferred_choice(A >> B, A >> C)
        scheduler = Scheduler(goal)
        scheduler.fire("a")  # both alternatives still live
        assert scheduler.eligible() == {"b", "c"}


class TestMilestone:
    def test_guarded_activity_waits(self):
        reach, guarded = milestone(B, "m")
        goal = (A >> reach) | guarded
        assert traces(goal) == {("a", "b")}

    def test_unreached_milestone_blocks_forever(self):
        _reach, guarded = milestone(B, "m")
        goal = A | guarded  # nothing ever sends the token
        assert traces(goal) == frozenset()

    def test_compiles_with_constraints(self):
        reach, guarded = milestone(B, "m")
        goal = (A >> reach) | guarded
        compiled = compile_workflow(goal, [must("b")])
        assert compiled.consistent
        assert list(compiled.schedules()) == [("a", "b")]
