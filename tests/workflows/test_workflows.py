"""Integration tests for the ready-made workflow specifications."""

from repro.constraints.algebra import absent, must, order
from repro.constraints.klein import klein_order
from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.core.verify import is_redundant, verify_property
from repro.ctr.formulas import atoms, event_names
from repro.ctr.pretty import pretty
from repro.ctr.traces import traces
from repro.db.state import Database
from repro.workflows.figure1 import (
    example_5_7,
    figure1_constraints,
    figure1_goal,
    figure1_graph,
)
from repro.workflows.orders import INVENTORY, PAYMENT, SHIPPING, orders_specification
from repro.workflows.registration import registration_specification
from repro.workflows.trip import trip_specification


class TestFigure1:
    def test_graph_terminals(self):
        g = figure1_graph()
        assert g.initial == "a" and g.final == "k"

    def test_goal_matches_formula_1(self):
        text = pretty(figure1_goal())
        assert text == (
            "a * (cond1? * b * (e + d * cond3? * h) * j"
            " | cond2? * c * (g * cond5? + f * i * cond4?)) * k"
        )

    def test_compiles_consistently(self):
        compiled = compile_workflow(figure1_goal(), figure1_constraints())
        assert compiled.consistent

    def test_all_schedules_satisfy_constraints(self):
        compiled = compile_workflow(figure1_goal(), figure1_constraints())
        for schedule in compiled.schedules():
            for constraint in figure1_constraints():
                assert satisfies(schedule, constraint)

    def test_example_5_7_excises_to_gamma_eta(self):
        goal, constraints = example_5_7()
        compiled = compile_workflow(goal, constraints)
        gamma, eta = atoms("gamma eta")
        assert compiled.goal == gamma >> eta
        assert list(compiled.schedules()) == [("gamma", "eta")]


class TestTrip:
    def test_consistent(self):
        goal, constraints = trip_specification()
        assert compile_workflow(goal, constraints).consistent

    def test_no_car_without_flight(self):
        goal, constraints = trip_specification()
        prop = klein_order("reserve_flight", "rent_car")
        # Weaker than the constraint set implies; verify it holds.
        assert verify_property(goal, constraints, prop).holds

    def test_train_forbids_refundable_upgrade(self):
        goal, constraints = trip_specification()
        for schedule in compile_workflow(goal, constraints).schedules():
            assert not (
                "book_train" in schedule and "upgrade_refundable" in schedule
            )

    def test_hotel_always_before_charge(self):
        goal, constraints = trip_specification()
        assert verify_property(goal, constraints, order("book_hotel", "charge_card")).holds

    def test_payment_is_contiguous(self):
        goal, constraints = trip_specification()
        for schedule in compile_workflow(goal, constraints).schedules():
            i = schedule.index("charge_card")
            assert schedule[i + 1] == "issue_voucher"


class TestOrders:
    def test_consistent(self):
        goal, constraints = orders_specification()
        assert compile_workflow(goal, constraints).consistent

    def test_no_shipping_after_payment_abort(self):
        goal, constraints = orders_specification()
        prop = absent(SHIPPING.commit)
        # Not universally true; but with payment aborted it must be.
        for schedule in compile_workflow(goal, constraints).schedules(limit=100_000):
            if PAYMENT.abort in schedule:
                assert SHIPPING.commit not in schedule

    def test_shipping_waits_for_both_commits(self):
        goal, constraints = orders_specification()
        for schedule in compile_workflow(goal, constraints).schedules(limit=100_000):
            if SHIPPING.start in schedule:
                assert schedule.index(PAYMENT.commit) < schedule.index(SHIPPING.start)
                assert schedule.index(INVENTORY.commit) < schedule.index(SHIPPING.start)

    def test_trigger_gated_at_runtime(self):
        goal, constraints = orders_specification(with_triggers=True)
        compiled = compile_workflow(goal, constraints)

        db = Database()  # stock not low: restock must not fire
        engine = WorkflowEngine(compiled, db=db)
        report = engine.run()
        assert "restock" not in report.schedule

        db_low = Database()
        db_low.insert("stock_low", "yes")
        engine2 = WorkflowEngine(compiled, db=db_low)
        report2 = engine2.run()
        if INVENTORY.commit in report2.schedule:
            assert "restock" in report2.schedule


class TestRegistration:
    def test_consistent(self):
        goal, constraints, rules = registration_specification()
        assert compile_workflow(goal, constraints, rules=rules).consistent

    def test_subworkflows_expanded(self):
        goal, constraints, rules = registration_specification()
        compiled = compile_workflow(goal, constraints, rules=rules)
        assert "meet_advisor" in event_names(compiled.source)
        assert "advising" not in event_names(compiled.source)

    def test_ra_holders_never_pay_late_fee(self):
        goal, constraints, rules = registration_specification()
        compiled = compile_workflow(goal, constraints, rules=rules)
        for schedule in compiled.schedules(limit=100_000):
            assert not ("apply_ra" in schedule and "pay_late_fee" in schedule)

    def test_tuition_always_paid(self):
        goal, constraints, rules = registration_specification()
        assert verify_property(goal, constraints, must("pay_tuition"), rules=rules).holds

    def test_plan_signed_before_funding(self):
        goal, constraints, rules = registration_specification()
        # Klein's conditional order: accept_offer need not occur (the
        # self-funded path), but when it does, the plan was signed first.
        assert verify_property(
            goal, constraints, klein_order("sign_plan", "accept_offer"), rules=rules
        ).holds

    def test_self_funded_path_exists(self):
        goal, constraints, rules = registration_specification()
        compiled = compile_workflow(goal, constraints, rules=rules)
        assert any(
            "self_funded" in s for s in compiled.schedules(limit=100_000)
        )
