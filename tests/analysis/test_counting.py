"""Tests for closed-form execution-path counting."""

import pytest
from hypothesis import given, settings

from repro.analysis.counting import count_paths, path_length_profile
from repro.ctr.formulas import (
    EMPTY,
    NEG_PATH,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    atoms,
)
from repro.ctr.traces import traces
from repro.errors import SpecificationError
from repro.graph.generators import parallel_chains
from repro.workflows.figure1 import figure1_goal
from tests.conftest import unique_event_goals

A, B, C, D = atoms("a b c d")


class TestExactCounts:
    def test_atom(self):
        assert count_paths(A) == 1

    def test_serial(self):
        assert count_paths(A >> B >> C) == 1

    def test_choice(self):
        assert count_paths(A + B + C) == 3

    def test_parallel_pair(self):
        assert count_paths(A | B) == 2

    def test_parallel_three(self):
        assert count_paths(A | B | C) == 6

    def test_chains_interleaving(self):
        # Two chains of length 2: C(4,2) = 6 interleavings.
        assert count_paths(parallel_chains(2, 2)) == 6

    def test_big_parallel_closed_form(self):
        # 4 chains of 3: 12! / (3!)^4 = 369600 - enumeration would crawl.
        assert count_paths(parallel_chains(4, 3)) == 369_600

    def test_isolated_block_is_atomic(self):
        assert count_paths(Isolated(A >> B) | C) == 2
        assert count_paths((A >> B) | C) == 3

    def test_isolated_multiplies_internals(self):
        assert count_paths(Isolated(A + B) | C) == 4  # 2 inner x 2 positions

    def test_tests_and_possibility_invisible(self):
        assert count_paths(Test("x") >> A) == 1
        assert count_paths(Possibility(A) >> B) == 1
        assert count_paths(Possibility(NEG_PATH) >> B) == 0

    def test_sentinels(self):
        assert count_paths(EMPTY) == 1
        assert count_paths(NEG_PATH) == 0

    def test_figure1(self):
        # Matches the E1 table ("executions of G" = 80).
        assert count_paths(figure1_goal()) == 80

    def test_tokens_rejected(self):
        with pytest.raises(SpecificationError):
            count_paths((A >> Send("t")) | (Receive("t") >> B))


class TestProfile:
    def test_lengths(self):
        profile = path_length_profile((A >> B) + C)
        assert profile == {2: 1, 1: 1}

    def test_block_counts_as_one_item(self):
        assert path_length_profile(Isolated(A >> B)) == {1: 1}


class TestAgainstEnumeration:
    @settings(max_examples=80, deadline=None)
    @given(unique_event_goals(max_events=5, allow_shared_choice=False))
    def test_matches_trace_count_without_shared_choices(self, goal):
        # Disjoint-event alternatives: every path is a distinct trace.
        assert count_paths(goal) == len(traces(goal))

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4))
    def test_upper_bounds_distinct_traces(self, goal):
        # Shared-choice goals may realise one trace via several paths.
        assert count_paths(goal) >= len(traces(goal))
