"""Tests for the Proposition 4.1 SAT reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sat import (
    Cnf,
    assignment_from_schedule,
    brute_force_sat,
    cnf_to_workflow,
    random_cnf,
    workflow_consistency_sat,
)
from repro.constraints.algebra import Or, Primitive
from repro.core.compiler import compile_workflow
from repro.ctr.unique import is_unique_event_goal


class TestCnf:
    def test_evaluate(self):
        cnf = Cnf(2, ((1, -2), (2,)))
        assert cnf.evaluate({1: True, 2: True})
        assert not cnf.evaluate({1: False, 2: False})

    def test_literal_validation(self):
        with pytest.raises(ValueError):
            Cnf(1, ((2,),))
        with pytest.raises(ValueError):
            Cnf(1, ((0,),))

    def test_random_cnf_shape(self):
        cnf = random_cnf(5, 7, seed=1)
        assert cnf.n_vars == 5
        assert len(cnf.clauses) == 7
        assert all(len(c) == 3 for c in cnf.clauses)
        assert all(len({abs(l) for l in c}) == 3 for c in cnf.clauses)

    def test_random_cnf_needs_enough_vars(self):
        with pytest.raises(ValueError):
            random_cnf(2, 1, k=3)


class TestBruteForce:
    def test_satisfiable(self):
        cnf = Cnf(2, ((1, 2),))
        assignment = brute_force_sat(cnf)
        assert assignment is not None
        assert cnf.evaluate(assignment)

    def test_unsatisfiable(self):
        cnf = Cnf(1, ((1,), (-1,)))
        assert brute_force_sat(cnf) is None


class TestReduction:
    def test_goal_shape(self):
        cnf = Cnf(3, ((1, 2, 3),))
        goal, constraints = cnf_to_workflow(cnf)
        assert is_unique_event_goal(goal)
        assert len(constraints) == 1
        # Existence constraints only: disjunctions of positive primitives.
        for constraint in constraints:
            assert isinstance(constraint, Or)
            for leaf in constraint.parts:
                assert isinstance(leaf, Primitive) and leaf.positive

    def test_satisfiable_cnf_is_consistent(self):
        cnf = Cnf(2, ((1, 2), (-1, 2)))
        goal, constraints = cnf_to_workflow(cnf)
        assert compile_workflow(goal, constraints).consistent

    def test_unsatisfiable_cnf_is_inconsistent(self):
        cnf = Cnf(1, ((1,), (-1,)))
        goal, constraints = cnf_to_workflow(cnf)
        assert not compile_workflow(goal, constraints).consistent

    def test_extracted_assignment_satisfies(self):
        cnf = Cnf(3, ((1, -2, 3), (-1, 2, -3), (1, 2, 3)))
        assignment = workflow_consistency_sat(cnf)
        assert assignment is not None
        assert cnf.evaluate(assignment)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 5), st.integers(1, 8))
    def test_agrees_with_brute_force(self, seed, n_vars, n_clauses):
        cnf = random_cnf(n_vars, n_clauses, seed=seed)
        via_workflow = workflow_consistency_sat(cnf)
        via_brute = brute_force_sat(cnf)
        assert (via_workflow is not None) == (via_brute is not None)
        if via_workflow is not None:
            assert cnf.evaluate(via_workflow)


class TestAssignmentExtraction:
    def test_reads_polarities(self):
        schedule = ("x2_false", "x1_true")
        assignment = assignment_from_schedule(schedule, 3)
        assert assignment == {1: True, 2: False, 3: False}
