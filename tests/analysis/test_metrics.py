"""Tests for the measurement and fitting utilities."""

import math

import pytest

from repro.analysis.metrics import (
    fit_exponential,
    fit_power_law,
    goal_stats,
    render_table,
)
from repro.ctr.formulas import Isolated, Receive, Send, atoms

A, B, C, D = atoms("a b c d")


class TestGoalStats:
    def test_counts(self):
        goal = (A | B | C) >> (D + Send("t")) >> Receive("t")
        stats = goal_stats(goal)
        assert stats.events == 4
        assert stats.choices == 1
        assert stats.tokens == 2
        assert stats.max_parallel_width == 3

    def test_size_matches_goal_size(self):
        from repro.ctr.formulas import goal_size

        goal = Isolated(A >> B) | C
        assert goal_stats(goal).size == goal_size(goal)


class TestFitting:
    def test_power_law_linear(self):
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [3.0 * x for x in xs]
        k, r2 = fit_power_law(xs, ys)
        assert k == pytest.approx(1.0, abs=1e-9)
        assert r2 == pytest.approx(1.0, abs=1e-9)

    def test_power_law_quadratic(self):
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [0.5 * x**2 for x in xs]
        k, _ = fit_power_law(xs, ys)
        assert k == pytest.approx(2.0, abs=1e-9)

    def test_exponential(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [7.0 * 3.0**x for x in xs]
        base, r2 = fit_exponential(xs, ys)
        assert base == pytest.approx(3.0, abs=1e-9)
        assert r2 == pytest.approx(1.0, abs=1e-9)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_exponential([2.0, 2.0], [1.0, 2.0])


class TestRenderTable:
    def test_structure(self):
        text = render_table(
            "T", ["x", "value"], [[1, 2.5], [10, 0.000123]], note="shape: linear"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[2] and "value" in lines[2]
        assert "1.230e-04" in text
        assert text.endswith("shape: linear")

    def test_wide_cells(self):
        text = render_table("T", ["name"], [["a-rather-long-entry"]])
        assert "a-rather-long-entry" in text
