"""Metamorphic properties of the compiler: algebraic laws it must respect.

These tests never compare against a hand-computed expected value; instead
they check that *related inputs produce related outputs* — permutation
invariance, idempotence, monotonicity — which catches whole classes of
bugs the example-based tests cannot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import conj
from repro.constraints.implication import implies
from repro.core.apply import apply_all
from repro.core.compiler import compile_workflow
from repro.core.excise import excise
from repro.ctr.formulas import event_names
from repro.ctr.simplify import is_failure
from repro.ctr.traces import traces
from tests.conftest import constraints_over, unique_event_goals


def compiled_traces(goal, constraints):
    compiled = excise(apply_all(list(constraints), goal))
    return frozenset() if is_failure(compiled) else traces(compiled, max_traces=2_000_000)


def events_of(goal, data=None):
    events = tuple(sorted(event_names(goal))) or ("e1", "e2")
    if len(events) == 1:
        events = events + ("e_other",)
    return events


class TestPermutationInvariance:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_constraint_order_is_irrelevant(self, goal, data):
        events = events_of(goal)
        c1 = data.draw(constraints_over(events))
        c2 = data.draw(constraints_over(events))
        assert compiled_traces(goal, [c1, c2]) == compiled_traces(goal, [c2, c1])

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_set_equals_conjunction(self, goal, data):
        events = events_of(goal)
        c1 = data.draw(constraints_over(events))
        c2 = data.draw(constraints_over(events))
        if c1 == c2:
            return
        assert compiled_traces(goal, [c1, c2]) == compiled_traces(goal, [conj(c1, c2)])


class TestIdempotence:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_applying_twice_changes_nothing(self, goal, data):
        constraint = data.draw(constraints_over(events_of(goal)))
        once = compiled_traces(goal, [constraint])
        twice = compiled_traces(goal, [constraint, constraint])
        assert once == twice

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_recompiling_compiled_goal_is_identity(self, goal, data):
        constraint = data.draw(constraints_over(events_of(goal)))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            return
        recompiled = compile_workflow(compiled.goal)
        assert traces(recompiled.goal) == traces(compiled.goal)


class TestMonotonicity:
    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_more_constraints_never_add_behaviour(self, goal, data):
        events = events_of(goal)
        c1 = data.draw(constraints_over(events))
        c2 = data.draw(constraints_over(events))
        assert compiled_traces(goal, [c1, c2]) <= compiled_traces(goal, [c1])

    @settings(max_examples=50, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_compiled_is_subset_of_source(self, goal, data):
        constraint = data.draw(constraints_over(events_of(goal)))
        assert compiled_traces(goal, [constraint]) <= traces(goal, max_traces=2_000_000)


class TestImpliedConstraints:
    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_implied_constraint_is_a_noop(self, goal, data):
        events = events_of(goal)
        c1 = data.draw(constraints_over(events))
        c2 = data.draw(constraints_over(events))
        if not implies(c1, c2, events=events):
            return
        assert compiled_traces(goal, [c1]) == compiled_traces(goal, [c1, c2])


class TestGoalSymmetry:
    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_choice_commutes(self, goal, data):
        from repro.ctr.formulas import alt, atoms

        constraint = data.draw(constraints_over(events_of(goal)))
        (other,) = atoms("zz_other")
        left = alt(goal, other)
        right = alt(other, goal)
        assert compiled_traces(left, [constraint]) == compiled_traces(right, [constraint])
