"""AdmissionController: guarantees, bursting, and fair shedding."""

import pytest

from repro.cluster.quotas import AdmissionController, TenantQuotaExceededError


class TestGuarantees:
    def test_under_guarantee_always_admitted(self):
        controller = AdmissionController(10, default_share=4)
        # A burster fills total capacity...
        controller.admit("big", 10)
        # ...but a tenant under its guarantee still gets in (the bounded
        # overshoot is the price of unconditional guarantees).
        controller.admit("small", 4)
        assert controller.usage_of("small") == 4
        assert controller.total_in_flight == 14

    def test_over_guarantee_sheds_at_capacity(self):
        controller = AdmissionController(10, default_share=4)
        controller.admit("big", 10)
        with pytest.raises(TenantQuotaExceededError) as info:
            controller.admit("big", 1)
        assert info.value.tenant == "big"
        assert controller.shed == 1

    def test_burst_into_idle_capacity(self):
        # Work-conserving: free capacity is usable beyond the guarantee.
        controller = AdmissionController(10, default_share=2)
        for _ in range(10):
            controller.admit("only", 1)
        assert controller.usage_of("only") == 10
        with pytest.raises(TenantQuotaExceededError):
            controller.admit("only", 1)

    def test_per_tenant_shares_override_default(self):
        controller = AdmissionController(10, default_share=1,
                                         shares={"gold": 8})
        controller.admit("filler", 10)
        controller.admit("gold", 8)
        with pytest.raises(TenantQuotaExceededError):
            controller.admit("bronze", 2)


class TestAccounting:
    def test_release_frees_capacity(self):
        controller = AdmissionController(4, default_share=1)
        controller.admit("a", 4)
        with pytest.raises(TenantQuotaExceededError):
            controller.admit("b", 2)
        controller.release("a", 4)
        controller.admit("b", 2)
        assert controller.usage_of("a") == 0
        assert controller.total_in_flight == 2

    def test_none_tenant_maps_to_default_namespace(self):
        controller = AdmissionController(4, default_share=4)
        controller.admit(None, 2)
        assert controller.usage_of(None) == 2
        controller.release(None, 2)
        assert controller.total_in_flight == 0

    def test_snapshot(self):
        controller = AdmissionController(8, default_share=2)
        controller.admit("a", 2)
        snap = controller.snapshot()
        assert snap["capacity"] == 8
        assert snap["in_flight"] == 2
        assert snap["tenants"]["a"] == {"usage": 2, "share": 2, "shed": 0}
        assert snap["admitted"] == 1 and snap["shed"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4, default_share=-1)
        with pytest.raises(ValueError):
            AdmissionController(4, shares={"a": -1})
        controller = AdmissionController(4)
        with pytest.raises(ValueError):
            controller.admit("a", 0)
