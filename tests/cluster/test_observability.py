"""Fleet observability against *real* subprocess workers: cross-process
trace assembly, federated metrics exactness, SLO surfacing, and the
hedge-win telemetry callbacks."""

import asyncio
import io
import time

import pytest

from repro.cli import main
from repro.cluster import cluster_in_thread
from repro.cluster.failover import call_with_failover
from repro.obs.context import IdSource
from repro.obs.distributed import assemble
from repro.obs.metrics import sum_scrapes

ORDERS = """
goal: receive * (credit | stock) * approve
constraint: precedes(credit, approve)
property credit_first: precedes(credit, approve)
property approved: happens(approve)
"""


@pytest.fixture(scope="class")
def traced_cluster(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    handle = cluster_in_thread(
        workers=2, replicas=2,
        tracing=True, ids_seed=42, trace_dir=trace_dir,
    )
    handle.trace_dir = trace_dir
    yield handle
    handle.stop()


def verify_traced(handle, seed: int = 99) -> str:
    """One traced verify through the front door; returns its trace id."""
    client = handle.client(ids=IdSource(seed=seed))
    try:
        out = client.verify(text=ORDERS)
        assert {r["name"]: r["holds"] for r in out["results"]} == {
            "credit_first": True, "approved": True,
        }
        trace_id = client.last_trace_id
    finally:
        client.close()
    assert trace_id and len(trace_id) == 32
    return trace_id


def collect_trace(handle, trace_id: str, deadline_s: float = 10.0) -> list:
    """Poll /traces/<id> until the worker segment's request *and* batch
    spans are both in the merge (the batch span is recorded a beat after
    the response goes out — don't race it)."""
    with handle.client() as client:
        deadline = time.monotonic() + deadline_s
        while True:
            data = client.trace(trace_id)
            spans = data["spans"]
            worker_names = {s["name"] for s in spans
                            if s["segment"] != "router"}
            if {"http.verify", "service.verify.batch"} <= worker_names:
                return spans
            if time.monotonic() > deadline:  # pragma: no cover - timing
                return spans
            time.sleep(0.05)


class TestDistributedTrace:
    def test_trace_reassembles_across_process_borders(self, traced_cluster):
        trace_id = verify_traced(traced_cluster)
        spans = collect_trace(traced_cluster, trace_id)
        segments = {s["segment"] for s in spans}
        assert "router" in segments
        workers = segments - {"router"}
        assert workers and workers <= {"w0", "w1"}
        # One tree: the router's request span roots it (its own remote
        # parent — the client's span — never reported a segment), the
        # worker's request span hangs beneath, the batch span below that.
        roots = assemble(spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["segment"] == "router"
        assert root["name"] == "http.verify"
        child_names = {(c["name"], c["segment"] != "router")
                       for c in root["children"]}
        assert ("http.verify", True) in child_names
        worker_request = next(c for c in root["children"]
                              if c["segment"] != "router")
        assert [g["name"] for g in worker_request["children"]] == \
            ["service.verify.batch"]

    def test_collection_persists_to_the_sink(self, traced_cluster):
        trace_id = verify_traced(traced_cluster, seed=7)
        collect_trace(traced_cluster, trace_id)
        path = traced_cluster.trace_dir / f"{trace_id}.trace.jsonl"
        assert path.exists()
        assert trace_id in traced_cluster.router.trace_sink.trace_ids()

    def test_cli_renders_the_persisted_tree(self, traced_cluster):
        trace_id = verify_traced(traced_cluster, seed=8)
        collect_trace(traced_cluster, trace_id)
        path = traced_cluster.trace_dir / f"{trace_id}.trace.jsonl"
        out = io.StringIO()
        assert main(["trace", "show", str(path), "--distributed"],
                    out=out) == 0
        text = out.getvalue()
        assert "http.verify @router" in text
        assert "http.verify @w" in text
        assert "service.verify.batch @w" in text

    def test_trace_fetch_writes_span_jsonl(self, traced_cluster, tmp_path):
        import json

        trace_id = verify_traced(traced_cluster, seed=9)
        collect_trace(traced_cluster, trace_id)
        output = tmp_path / "fetched.jsonl"
        out = io.StringIO()
        assert main([
            "trace", "fetch", trace_id,
            "--port", str(traced_cluster.port), "-o", str(output),
        ], out=out) == 0
        lines = output.read_text().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        assert all(s["trace_id"] == trace_id for s in spans)

    def test_traces_index_lists_collected_traces(self, traced_cluster):
        trace_id = verify_traced(traced_cluster, seed=10)
        collect_trace(traced_cluster, trace_id)
        with traced_cluster.client() as client:
            assert trace_id in client.traces()


class TestFederatedMetrics:
    def test_totals_are_exactly_the_sum_of_worker_scrapes(
        self, traced_cluster
    ):
        verify_traced(traced_cluster, seed=11)
        with traced_cluster.client() as client:
            data = client.cluster_metrics(format="json")
        workers = data["workers"]
        assert set(workers) == {"w0", "w1"}
        # The CI gate in bench_obs_cluster asserts the same equality —
        # federation must be bookkeeping, never estimation.
        assert data["totals"] == sum_scrapes(workers)
        submitted = data["totals"]["counters"].get(
            "service.verify.submitted", 0
        )
        assert submitted >= 1

    def test_prometheus_text_carries_worker_labels(self, traced_cluster):
        verify_traced(traced_cluster, seed=12)
        with traced_cluster.client() as client:
            text = client.cluster_metrics()
        assert 'worker="w0"' in text
        assert 'worker="router"' in text
        assert "# TYPE" in text

    def test_router_gauges_include_fleet_derivatives(self, traced_cluster):
        verify_traced(traced_cluster, seed=13)
        with traced_cluster.client() as client:
            data = client.cluster_metrics(format="json")
        gauges = data["router"]["gauges"]
        assert gauges.get("cluster.coalescing_ratio") is not None
        p95 = [name for name in gauges
               if name.startswith("cluster.replica.")
               and name.endswith(".verify_p95")]
        assert p95, f"no per-replica p95 gauges in {sorted(gauges)}"


class TestClusterStatus:
    def test_status_reports_slo_objectives(self, traced_cluster):
        verify_traced(traced_cluster, seed=14)
        with traced_cluster.client() as client:
            status = client.cluster_status()
        slo = status["slo"]
        names = [o["name"] for o in slo["objectives"]]
        assert names == ["availability", "latency_p95_500ms"]
        by_name = {o["name"]: o for o in slo["objectives"]}
        # A healthy cluster burns no error budget.
        assert by_name["availability"]["met"] is True
        assert by_name["availability"]["burn_rate"] == 0.0
        assert all(w["healthy"] for w in status["workers"])

    def test_client_errors_do_not_burn_availability(self, traced_cluster):
        from repro.service import ServiceClientError

        with traced_cluster.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify(spec="no-such-spec")
            assert excinfo.value.status == 404
            status = client.cluster_status()
        by_name = {o["name"]: o
                   for o in status["slo"]["objectives"]}
        assert by_name["availability"]["ratio"] == 1.0


class TestHedgeTelemetry:
    def test_hedge_win_callbacks_fire(self):
        events = []

        async def call(worker_id):
            if worker_id == "primary":
                await asyncio.sleep(0.5)
                return "slow"
            return "fast"

        async def scenario():
            return await call_with_failover(
                ["primary", "backup"], call, hedge_delay=0.01,
                on_hedge=lambda w: events.append(("hedge", w)),
                on_hedge_win=lambda w: events.append(("win", w)),
            )

        result, worker_id = asyncio.run(scenario())
        assert (result, worker_id) == ("fast", "backup")
        assert events == [("hedge", "backup"), ("win", "backup")]

    def test_primary_win_is_not_a_hedge_win(self):
        events = []

        async def call(worker_id):
            if worker_id != "primary":  # pragma: no cover - must not run
                await asyncio.sleep(1.0)
            return worker_id

        async def scenario():
            return await call_with_failover(
                ["primary", "backup"], call, hedge_delay=5.0,
                on_hedge=lambda w: events.append(("hedge", w)),
                on_hedge_win=lambda w: events.append(("win", w)),
            )

        result, worker_id = asyncio.run(scenario())
        assert worker_id == "primary"
        assert events == []
