"""HashRing: determinism, replica sets, and minimal churn on membership."""

import pytest

from repro.cluster.placement import HashRing

KEYS = [f"spec{i}@1" for i in range(200)] + [f"inline:{i:016x}" for i in range(50)]


class TestDeterminism:
    def test_same_key_same_replicas(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=2)
        for key in KEYS:
            assert ring.replicas_for(key) == ring.replicas_for(key)

    def test_placement_is_stable_across_instances(self):
        # Two independently built rings (insertion order shuffled) agree —
        # the chaos tests compute a key's primary from another process.
        a = HashRing(["w0", "w1", "w2", "w3"], replicas=2)
        b = HashRing(["w3", "w1", "w0", "w2"], replicas=2)
        for key in KEYS:
            assert a.replicas_for(key) == b.replicas_for(key)

    def test_replicas_are_distinct_primary_first(self):
        ring = HashRing(["w0", "w1", "w2", "w3"], replicas=3)
        for key in KEYS:
            replicas = ring.replicas_for(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.primary_for(key)


class TestMembership:
    def test_fewer_workers_than_replicas(self):
        ring = HashRing(["w0"], replicas=3)
        assert ring.replicas_for("orders@1") == ("w0",)

    def test_empty_ring(self):
        ring = HashRing(replicas=2)
        assert ring.replicas_for("orders@1") == ()
        with pytest.raises(ValueError):
            ring.primary_for("orders@1")

    def test_add_remove_idempotent(self):
        ring = HashRing(["w0", "w1"], replicas=2)
        ring.add("w0")
        assert ring.workers == ("w0", "w1")
        ring.remove("w1")
        ring.remove("w1")
        assert ring.workers == ("w0",)
        assert len(ring) == 1
        assert "w0" in ring and "w1" not in ring

    def test_removal_moves_only_departed_workers_keys(self):
        # Consistent hashing's point: dropping one worker must not
        # reshuffle keys between the survivors.
        ring = HashRing(["w0", "w1", "w2", "w3"], replicas=1)
        before = {key: ring.primary_for(key) for key in KEYS}
        ring.remove("w2")
        for key, owner in before.items():
            if owner != "w2":
                assert ring.primary_for(key) == owner
            else:
                assert ring.primary_for(key) != "w2"

    def test_readding_restores_placement(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=2)
        before = {key: ring.replicas_for(key) for key in KEYS}
        ring.remove("w1")
        ring.add("w1")
        assert all(ring.replicas_for(k) == v for k, v in before.items())

    def test_distribution_is_roughly_even(self):
        ring = HashRing([f"w{i}" for i in range(4)], replicas=1)
        counts = {w: 0 for w in ring.workers}
        for i in range(2000):
            counts[ring.primary_for(f"key{i}@1")] += 1
        # 64 vnodes/worker keeps every worker within a loose factor of
        # the mean (500); the property that matters is no starved worker.
        assert min(counts.values()) > 200
        assert max(counts.values()) < 900


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
