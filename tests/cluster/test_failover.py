"""call_with_failover: replica walks, retry budgets, hedged reads."""

import asyncio

import pytest

from repro.cluster.failover import AllReplicasFailedError, call_with_failover
from repro.cluster.worker import WorkerUnavailableError


def run(coro):
    return asyncio.run(coro)


def scripted(behaviors, calls=None):
    """``behaviors[worker] = result | Exception | (delay, result)``."""
    calls = calls if calls is not None else []

    async def call(worker_id):
        calls.append(worker_id)
        behavior = behaviors[worker_id]
        if isinstance(behavior, tuple):
            delay, behavior = behavior
            await asyncio.sleep(delay)
        if isinstance(behavior, Exception):
            raise behavior
        return behavior

    return call, calls


class TestSequential:
    def test_primary_answers(self):
        call, calls = scripted({"w0": "ok0", "w1": "ok1"})
        result, worker = run(call_with_failover(["w0", "w1"], call))
        assert (result, worker) == ("ok0", "w0")
        assert calls == ["w0"]

    def test_fails_over_in_placement_order(self):
        call, calls = scripted({
            "w0": WorkerUnavailableError("w0", "dead"),
            "w1": WorkerUnavailableError("w1", "dead"),
            "w2": "ok2",
        })
        failures = []
        result, worker = run(call_with_failover(
            ["w0", "w1", "w2"], call,
            on_failure=lambda w, e: failures.append(w),
        ))
        assert (result, worker) == ("ok2", "w2")
        assert calls == ["w0", "w1", "w2"]
        assert failures == ["w0", "w1"]

    def test_budget_caps_attempts(self):
        call, calls = scripted({
            "w0": WorkerUnavailableError("w0", "dead"),
            "w1": WorkerUnavailableError("w1", "dead"),
            "w2": "never reached",
        })
        with pytest.raises(AllReplicasFailedError) as info:
            run(call_with_failover(["w0", "w1", "w2"], call, budget=2))
        assert calls == ["w0", "w1"]
        assert len(info.value.errors) == 2

    def test_all_replicas_down(self):
        call, _ = scripted({
            "w0": WorkerUnavailableError("w0", "dead"),
            "w1": WorkerUnavailableError("w1", "dead"),
        })
        with pytest.raises(AllReplicasFailedError):
            run(call_with_failover(["w0", "w1"], call))

    def test_empty_replica_set(self):
        async def call(worker_id):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(AllReplicasFailedError):
            run(call_with_failover([], call))

    def test_non_transport_error_propagates_immediately(self):
        call, calls = scripted({"w0": ValueError("bad spec"), "w1": "ok"})
        with pytest.raises(ValueError):
            run(call_with_failover(["w0", "w1"], call))
        assert calls == ["w0"]  # an *answer*, not a transport failure


class TestHedged:
    def test_fast_primary_wins_without_hedging(self):
        call, calls = scripted({"w0": "ok0", "w1": "ok1"})
        result, worker = run(call_with_failover(
            ["w0", "w1"], call, hedge_delay=0.05
        ))
        assert (result, worker) == ("ok0", "w0")
        assert calls == ["w0"]

    def test_slow_primary_hedges_to_secondary(self):
        call, calls = scripted({"w0": (0.5, "ok0"), "w1": "ok1"})
        result, worker = run(call_with_failover(
            ["w0", "w1"], call, hedge_delay=0.01
        ))
        assert (result, worker) == ("ok1", "w1")
        assert set(calls) == {"w0", "w1"}  # the straggler was started...
        # ...and cancelled: no leaked tasks (asyncio.run would warn).

    def test_failed_primary_launches_next_immediately(self):
        call, calls = scripted({
            "w0": WorkerUnavailableError("w0", "dead"),
            "w1": (0.01, "ok1"),
        })
        result, worker = run(call_with_failover(
            ["w0", "w1"], call, hedge_delay=5.0
        ))
        assert (result, worker) == ("ok1", "w1")
        assert calls == ["w0", "w1"]

    def test_hedged_all_fail(self):
        call, _ = scripted({
            "w0": (0.01, WorkerUnavailableError("w0", "dead")),
            "w1": WorkerUnavailableError("w1", "dead"),
        })
        with pytest.raises(AllReplicasFailedError) as info:
            run(call_with_failover(["w0", "w1"], call, hedge_delay=0.001))
        assert len(info.value.errors) == 2

    def test_hedged_non_transport_error_propagates(self):
        call, _ = scripted({"w0": (0.2, "ok"), "w1": ValueError("bad")})
        with pytest.raises(ValueError):
            run(call_with_failover(["w0", "w1"], call, hedge_delay=0.001))
