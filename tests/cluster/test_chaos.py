"""Chaos acceptance: SIGKILL a worker, the cluster keeps its promises.

Three promises, each against *real* subprocess workers:

* the supervisor notices the kill and restarts the worker within the
  configured backoff envelope;
* an in-flight request whose primary dies fails over to the replica and
  the answer is **bit-identical** to a single daemon's (Corollary 3.5:
  verification is pure, so any replica — or the degraded in-process
  fallback — must produce the same verdicts and witnesses);
* with *every* replica down, the router still answers (tagged
  ``degraded``) rather than dropping the request.

Determinism discipline: placement is computed from the same
:class:`~repro.cluster.placement.HashRing` the router uses (sha256, no
``PYTHONHASHSEED`` dependence), so tests kill exactly the primary for a
key; and for transport-level failover the supervisor's health interval
is set far out, so the router *believes* the dead primary is healthy and
must discover the crash through the failed request itself.
"""

import threading
import time

import pytest

from repro.cluster import cluster_in_thread
from repro.core.resilience import RetryPolicy
from repro.service import serve_in_thread

ORDERS = """
goal: receive * (credit | stock) * approve * archive
constraint: precedes(credit, approve)
property credit_first: precedes(credit, approve)
property archived: happens(archive)
property backwards: precedes(stock, credit)
"""


def bench_spec(pairs: int) -> str:
    """The service benchmark's workload shape, two properties per pair
    (``pairs=8`` → the full 16-property batch): each property holds, so
    each forces a full G ∧ C ∧ ¬Φ compile — maximal uniform work.
    (Constraint count stays at ``pairs`` because compilation is
    exponential in it — Theorem 5.11's ``O(d^N·|G|)``.)"""
    lines = ["goal: " + " * ".join(f"(a{i} | b{i})" for i in range(pairs))]
    for i in range(pairs):
        lines.append(f"constraint: precedes(a{i}, b{i}) "
                     f"or precedes(b{i}, a{i})")
    for i in range(pairs):
        lines.append(f"property p{i}: precedes(a{i}, b{i}) "
                     f"or precedes(b{i}, a{i})")
        lines.append(f"property h{i}: happens(a{i}) or happens(b{i})")
    return "\n".join(lines) + "\n"


def result_rows(payload: dict) -> list:
    """Just the verdict rows — the part that must be bit-identical
    whichever daemon (or fallback) answered."""
    return payload["results"]


def single_daemon_reference(text: str, **verify_kwargs) -> dict:
    with serve_in_thread(batch_window=0.001) as handle:
        with handle.client() as client:
            return client.verify(text=text, **verify_kwargs)


def primary_and_backup(handle, text: str) -> tuple[str, str]:
    entry = handle.router.registry.resolve_inline(text)
    replicas = handle.router.ring.replicas_for(entry.key)
    assert len(replicas) == 2
    return replicas


class TestRestartAfterKill:
    def test_supervisor_restarts_within_backoff_envelope(self):
        handle = cluster_in_thread(
            workers=2, replicas=2,
            supervisor_kwargs={
                "health_interval": 0.1,
                "restart_policy": RetryPolicy(
                    max_attempts=1000, base_delay=0.2,
                    multiplier=2.0, max_delay=1.0, jitter=0.5,
                ),
            },
        )
        try:
            state = handle.router.supervisor.state_of("w0")
            first_pid = state.handle.pid
            handle.kill_worker("w0")
            # Envelope: detection ≤ ~health interval, restart delay ≤
            # base_delay * (1 + jitter) = 0.3s; 10s is a generous ceiling
            # that still catches a supervisor that never restarts.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if state.healthy and state.handle.pid != first_pid:
                    break
                time.sleep(0.05)
            assert state.healthy, "worker was not restarted in time"
            assert state.restarts >= 1
            assert state.handle.pid != first_pid
            # The resurrected worker serves traffic.
            with handle.client() as client:
                out = client.verify(text=ORDERS)
            assert {r["name"]: r["holds"] for r in out["results"]} == {
                "credit_first": True, "archived": True, "backwards": False,
            }
        finally:
            handle.stop()


class TestFailoverBitIdentical:
    @pytest.fixture
    def quiet_cluster(self):
        # Health checks far out: the router must discover the kill through
        # the failed request itself, exercising transport-level failover.
        # (A killed worker stays dead — each test gets a fresh cluster.)
        handle = cluster_in_thread(
            workers=2, replicas=2,
            supervisor_kwargs={"health_interval": 3600.0},
        )
        yield handle
        handle.stop()

    def test_kill_primary_fails_over_bit_identical(self, quiet_cluster):
        handle = quiet_cluster
        primary, backup = primary_and_backup(handle, ORDERS)
        handle.kill_worker(primary)
        with handle.client() as client:
            out = client.verify(text=ORDERS, seed=11)
        assert out["worker"] == backup
        assert "degraded" not in out
        reference = single_daemon_reference(ORDERS, seed=11)
        assert result_rows(out) == result_rows(reference)
        # The supervisor learned about the crash from the router.
        assert not handle.router.supervisor.state_of(primary).healthy

    def test_concurrent_inflight_requests_all_answer(self, quiet_cluster):
        handle = quiet_cluster
        text = bench_spec(3)  # 6 properties: real but brief batches
        primary, _ = primary_and_backup(handle, text)
        outs, errors = [], []
        lock = threading.Lock()

        def one_request():
            try:
                with handle.client() as client:
                    out = client.verify(text=text)
                with lock:
                    outs.append(out)
            except BaseException as exc:  # pragma: no cover - gate below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=one_request) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        handle.kill_worker(primary)  # mid-batch for whoever reached it
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"in-flight requests failed: {errors[:1]}"
        assert len(outs) == 8
        reference = result_rows(single_daemon_reference(text))
        for out in outs:
            assert result_rows(out) == reference


class TestDegradedPath:
    def test_all_replicas_down_still_answers(self):
        handle = cluster_in_thread(
            workers=2, replicas=2,
            supervisor_kwargs={
                "health_interval": 0.1,
                # Keep the dead workers dead for the duration of the test.
                "restart_policy": RetryPolicy(max_attempts=1000,
                                              base_delay=120.0),
            },
        )
        try:
            for worker_id in handle.router.supervisor.workers:
                handle.kill_worker(worker_id)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not handle.router.supervisor.healthy_workers():
                    break
                time.sleep(0.05)
            assert handle.router.supervisor.healthy_workers() == ()
            with handle.client() as client:
                out = client.verify(text=ORDERS, seed=11)
            # Answered — degraded, tagged, and still bit-identical.
            assert out["degraded"] is True
            reference = single_daemon_reference(ORDERS, seed=11)
            assert result_rows(out) == result_rows(reference)
        finally:
            handle.stop()


class TestFullBatchFidelity:
    def test_cluster_jobs4_matches_single_daemon_on_16_property_batch(self):
        text = bench_spec(8)  # the full 16-property batch
        handle = cluster_in_thread(workers=2, replicas=2, worker_jobs=4)
        try:
            with handle.client(timeout=300.0) as client:
                clustered = client.verify(text=text)
        finally:
            handle.stop()
        assert len(result_rows(clustered)) == 16
        reference = single_daemon_reference(text)
        assert result_rows(clustered) == result_rows(reference)
