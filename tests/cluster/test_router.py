"""ClusterRouter: routing, rebranding, tenancy, quotas, degraded mode.

The unit tests call the router's ``_handle`` directly with scripted fake
workers on a VirtualClock — no sockets, no subprocesses. The end-to-end
class at the bottom runs a real cluster (subprocess workers) through the
blocking client on the wire protocol.
"""

import asyncio
import json

import pytest

from repro.cluster.quotas import AdmissionController, TenantQuotaExceededError
from repro.cluster.router import ClusterRouter, cluster_in_thread
from repro.cluster.supervisor import WorkerSupervisor
from repro.cluster.worker import WorkerUnavailableError
from repro.core.resilience import VirtualClock
from repro.core.verify import verify_property
from repro.service.registry import UnknownSpecError
from repro.spec import parse_specification

ORDERS = """
goal: receive * (credit | stock) * approve * archive
constraint: precedes(credit, approve)
property credit_first: precedes(credit, approve)
property archived: happens(archive)
property backwards: precedes(stock, credit)
"""

CLAIMS = """
goal: submit * (triage + fastpath) * settle
property settled: happens(settle)
"""


def run(coro):
    return asyncio.run(coro)


def body(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


class FakeClusterWorker:
    """Answers like a daemon would, recording what it was asked."""

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.alive = False
        self.fail = False
        self.requests = []
        self.gate: asyncio.Event | None = None  # park requests when set

    @property
    def running(self):
        return self.alive

    async def start(self):
        self.alive = True
        return "127.0.0.1", 1

    async def stop(self, timeout=10.0):
        self.alive = False

    def kill(self):
        self.alive = False

    async def healthz(self, timeout=5.0):
        if not self.alive or self.fail:
            raise WorkerUnavailableError(self.worker_id, "dead")
        return {"status": "ok"}

    async def request(self, method, path, body=None, timeout=30.0):
        if not self.alive or self.fail:
            raise WorkerUnavailableError(self.worker_id, "dead")
        self.requests.append((path, body))
        if self.gate is not None:
            await self.gate.wait()
        return 200, {
            "spec": "inline:0000000000000000",
            "version": 1,
            "results": [],
            "served_by": self.worker_id,
        }


def make_router(n_workers=2, **router_kwargs):
    workers = [FakeClusterWorker(f"w{i}") for i in range(n_workers)]
    supervisor = WorkerSupervisor(workers, clock=VirtualClock(), seed=3)
    router = ClusterRouter(supervisor, **router_kwargs)
    return router, workers, supervisor


async def handle(router, method, path, payload=None, tenant=None):
    headers = {"x-repro-tenant": tenant} if tenant else {}
    raw = body(payload) if payload is not None else b""
    return await router._handle(method, path, {}, headers, raw)


class TestRouting:
    def test_forwards_resolved_text_and_rebrands(self):
        async def scenario():
            router, workers, sup = make_router()
            await sup.start()
            status, _, _ = await handle(
                router, "POST", "/specs", {"name": "orders", "text": ORDERS}
            )
            assert status == 200
            status, payload, _ = await handle(
                router, "POST", "/verify", {"spec": "orders"}
            )
            assert status == 200
            # Workers never see the catalog name: text is shipped inline.
            (path, forwarded), = [
                r for w in workers for r in w.requests
            ]
            assert path == "/verify"
            assert forwarded["text"] == ORDERS
            assert "spec" not in forwarded
            # The client-facing response restores the registry's identity.
            assert payload["spec"] == "orders"
            assert payload["version"] == 1
            assert payload["worker"] == payload["served_by"]

        run(scenario())

    def test_failover_marks_worker_down_and_answers(self):
        async def scenario():
            router, workers, sup = make_router(n_workers=2)
            await sup.start()
            assert len(router.ring) == 2
            entry = router.registry.resolve_inline(CLAIMS)
            primary, backup = router.ring.replicas_for(entry.key)
            by_id = {w.worker_id: w for w in workers}
            by_id[primary].fail = True
            status, payload, _ = await handle(
                router, "POST", "/consistency", {"text": CLAIMS}
            )
            assert status == 200
            assert payload["worker"] == backup
            # The transport failure was reported: the primary left the ring.
            assert sup.healthy_workers() == (backup,)
            assert router.ring.workers == (backup,)

        run(scenario())

    def test_unknown_spec_is_not_forwarded(self):
        async def scenario():
            router, workers, sup = make_router()
            await sup.start()
            with pytest.raises(UnknownSpecError):
                await handle(router, "POST", "/verify", {"spec": "ghost"})
            assert all(not w.requests for w in workers)

        run(scenario())

    def test_healthz_and_status(self):
        async def scenario():
            router, workers, sup = make_router(n_workers=3, replicas=2)
            await sup.start()
            _, health, _ = await handle(router, "GET", "/healthz")
            assert health["role"] == "router"
            assert health["healthy_workers"] == 3 and health["ring"] == 3
            _, status, _ = await handle(router, "GET", "/cluster/status")
            assert [w["worker"] for w in status["workers"]] == ["w0", "w1", "w2"]
            assert status["replicas"] == 2

        run(scenario())


class TestDegraded:
    def test_all_replicas_down_answers_in_process(self):
        async def scenario():
            router, workers, sup = make_router(n_workers=2)
            await sup.start()
            router._fallback.batcher.start()
            try:
                for worker in workers:
                    worker.fail = True
                status, payload, _ = await handle(
                    router, "POST", "/verify", {"text": ORDERS}
                )
            finally:
                await router._fallback.batcher.aclose()
            assert status == 200
            assert payload["degraded"] is True
            holds = {r["name"]: r["holds"] for r in payload["results"]}
            assert holds == {
                "credit_first": True, "archived": True, "backwards": False,
            }

        run(scenario())

    def test_degraded_results_match_direct_verification(self):
        async def scenario():
            router, workers, sup = make_router(n_workers=1)
            await sup.start()
            router._fallback.batcher.start()
            try:
                workers[0].fail = True
                _, payload, _ = await handle(
                    router, "POST", "/verify", {"text": ORDERS}
                )
            finally:
                await router._fallback.batcher.aclose()
            spec = parse_specification(ORDERS)
            for item in payload["results"]:
                prop = dict(spec.properties)[item["name"]]
                direct = verify_property(
                    spec.goal, list(spec.constraints), prop, rules=spec.rules
                )
                assert item["holds"] == direct.holds

        run(scenario())


class TestTenancy:
    def test_namespaces_are_isolated(self):
        async def scenario():
            router, workers, sup = make_router()
            await sup.start()
            await handle(router, "POST", "/specs",
                         {"name": "private", "text": CLAIMS}, tenant="acme")
            _, listing, _ = await handle(router, "GET", "/specs",
                                         tenant="acme")
            assert [s["name"] for s in listing["specs"]] == ["private"]
            _, listing, _ = await handle(router, "GET", "/specs",
                                         tenant="rival")
            assert listing["specs"] == []
            _, listing, _ = await handle(router, "GET", "/specs")
            assert listing["specs"] == []  # no tenant: no namespaced specs
            with pytest.raises(UnknownSpecError):
                await handle(router, "POST", "/verify",
                             {"spec": "private"}, tenant="rival")

        run(scenario())

    def test_tenant_requests_are_routed_and_rebranded(self):
        async def scenario():
            router, workers, sup = make_router()
            await sup.start()
            await handle(router, "POST", "/specs",
                         {"name": "private", "text": CLAIMS}, tenant="acme")
            status, payload, _ = await handle(
                router, "POST", "/verify", {"spec": "private"}, tenant="acme"
            )
            assert status == 200
            assert payload["spec"] == "private"  # not "acme::private"

        run(scenario())

    def test_malformed_tenant_rejected(self):
        async def scenario():
            router, _, sup = make_router()
            await sup.start()
            from repro.service.http import HttpError

            with pytest.raises(HttpError) as info:
                await handle(router, "GET", "/specs", tenant="a::b")
            assert info.value.status == 400

        run(scenario())


class TestQuotas:
    def test_burster_is_shed_while_guaranteed_tenant_admitted(self):
        async def scenario():
            admission = AdmissionController(4, default_share=2)
            router, workers, sup = make_router(admission=admission)
            await sup.start()
            await handle(router, "POST", "/specs",
                         {"name": "claims", "text": CLAIMS})
            gate = asyncio.Event()
            for worker in workers:
                worker.gate = gate
            # The burster parks 4 in-flight requests (capacity).
            burst = [
                asyncio.ensure_future(handle(
                    router, "POST", "/verify", {"spec": "claims"},
                    tenant="burster",
                ))
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            assert admission.total_in_flight == 4
            # Over share, at capacity: the burster's next request is shed...
            with pytest.raises(TenantQuotaExceededError):
                await handle(router, "POST", "/verify", {"spec": "claims"},
                             tenant="burster")
            # ...but a tenant under guarantee still gets an answer.
            quiet = asyncio.ensure_future(handle(
                router, "POST", "/verify", {"spec": "claims"}, tenant="quiet"
            ))
            await asyncio.sleep(0)
            gate.set()
            status, _, _ = await quiet
            assert status == 200
            await asyncio.gather(*burst)
            assert admission.total_in_flight == 0

        run(scenario())

    def test_verify_cost_is_property_count(self):
        async def scenario():
            admission = AdmissionController(100, default_share=1)
            router, workers, sup = make_router(admission=admission)
            await sup.start()
            await handle(router, "POST", "/specs",
                         {"name": "orders", "text": ORDERS})
            gate = asyncio.Event()
            for worker in workers:
                worker.gate = gate
            waiter = asyncio.ensure_future(handle(
                router, "POST", "/verify", {"spec": "orders"}, tenant="t"
            ))
            await asyncio.sleep(0)
            assert admission.usage_of("t") == 3  # all three properties
            gate.set()
            await waiter
            assert admission.usage_of("t") == 0

        run(scenario())


class TestClusterEndToEnd:
    """A real cluster: subprocess workers behind the wire protocol."""

    @pytest.fixture(scope="class")
    def cluster(self):
        handle = cluster_in_thread(workers=2, replicas=2)
        with handle.client() as client:
            client.register("orders", ORDERS)
        yield handle
        handle.stop()

    def test_healthz(self, cluster):
        with cluster.client() as client:
            health = client.healthz()
        assert health["role"] == "router"
        assert health["healthy_workers"] == 2

    def test_verify_matches_direct_verification(self, cluster):
        with cluster.client() as client:
            out = client.verify(spec="orders")
        assert out["spec"] == "orders"
        assert out["worker"] in ("w0", "w1")
        assert "degraded" not in out
        spec = parse_specification(ORDERS)
        for item in out["results"]:
            prop = dict(spec.properties)[item["name"]]
            direct = verify_property(
                spec.goal, list(spec.constraints), prop, rules=spec.rules
            )
            assert item["holds"] == direct.holds

    def test_consistency_and_schedule_route(self, cluster):
        with cluster.client() as client:
            assert client.consistency(spec="orders") is True
            schedules = client.schedule(spec="orders", limit=3)["schedules"]
        # The orders workflow admits exactly two interleavings under the
        # credit-before-approve constraint.
        assert len(schedules) == 2

    def test_tenant_isolation_over_the_wire(self, cluster):
        with cluster.client(tenant="acme") as client:
            client.register("secret", CLAIMS)
            assert client.verify(spec="secret")["spec"] == "secret"
        from repro.service import ServiceClientError

        with cluster.client(tenant="rival") as client:
            with pytest.raises(ServiceClientError) as info:
                client.verify(spec="secret")
            assert info.value.status == 404

    def test_metrics_exposed_under_cluster_prefix(self, cluster):
        with cluster.client() as client:
            text = client.metrics()
        assert "cluster_http_verify_requests" in text or \
            "cluster.http.verify.requests" in text
