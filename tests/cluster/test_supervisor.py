"""WorkerSupervisor: scripted fakes on a VirtualClock.

Every timing branch — backoff growth, flap detection, the circuit
breaker's open → half-open → closed walk — is driven deterministically:
tests call :meth:`~repro.cluster.supervisor.WorkerSupervisor.check_once`
by hand and advance the clock, so no wall-clock races.
"""

import asyncio

import pytest

from repro.cluster.supervisor import CircuitBreaker, WorkerSupervisor
from repro.cluster.worker import WorkerError, WorkerUnavailableError
from repro.core.resilience import RetryPolicy, VirtualClock


class FakeWorker:
    """A scripted worker: tests flip ``alive`` and ``start_fails``."""

    def __init__(self, worker_id, start_fails=0):
        self.worker_id = worker_id
        self.alive = False
        self.start_fails = start_fails  # consume N failures before starting
        self.started = 0
        self.stopped = 0

    @property
    def running(self):
        return self.alive

    async def start(self):
        if self.start_fails > 0:
            self.start_fails -= 1
            raise WorkerError(f"{self.worker_id} refused to start")
        self.alive = True
        self.started += 1
        return "127.0.0.1", 1

    async def stop(self, timeout=10.0):
        self.alive = False
        self.stopped += 1

    def kill(self):
        self.alive = False

    async def healthz(self, timeout=5.0):
        if not self.alive:
            raise WorkerUnavailableError(self.worker_id, "dead")
        return {"status": "ok"}


def make_supervisor(workers, clock=None, **kwargs):
    clock = clock or VirtualClock()
    kwargs.setdefault(
        "restart_policy",
        RetryPolicy(max_attempts=1000, base_delay=1.0, multiplier=2.0,
                    max_delay=60.0),
    )
    kwargs.setdefault("seed", 7)
    return WorkerSupervisor(workers, clock=clock, **kwargs), clock


def run(coro):
    return asyncio.run(coro)


class TestRestart:
    def test_crash_is_detected_and_restarted_after_backoff(self):
        async def scenario():
            worker = FakeWorker("w0")
            sup, clock = make_supervisor([worker], flap_window=0.0)
            await sup.start()
            assert sup.healthy_workers() == ("w0",)

            worker.alive = False  # crash
            await sup.check_once()
            assert sup.healthy_workers() == ()
            state = sup.state_of("w0")
            assert state.next_restart_at is not None

            # Before the backoff elapses nothing happens.
            await sup.check_once()
            assert not state.healthy

            clock.advance(state.next_restart_at - clock.now())
            await sup.check_once()
            assert state.healthy
            assert state.restarts == 1
            assert worker.started == 2

        run(scenario())

    def test_backoff_grows_exponentially_on_failed_restarts(self):
        async def scenario():
            worker = FakeWorker("w0", start_fails=10)
            sup, clock = make_supervisor(
                [worker],
                restart_policy=RetryPolicy(max_attempts=1000, base_delay=1.0,
                                           multiplier=2.0, max_delay=60.0),
                breaker_threshold=100,  # keep the breaker out of this test
            )
            await sup.start()  # first start fails -> scheduled
            state = sup.state_of("w0")
            delays = []
            for _ in range(4):
                due = state.next_restart_at
                delays.append(due - clock.now())
                clock.advance(due - clock.now())
                await sup.check_once()  # each restart attempt fails again
            assert delays == [1.0, 2.0, 4.0, 8.0]

        run(scenario())

    def test_jitter_spreads_restarts(self):
        async def scenario():
            workers = [FakeWorker(f"w{i}", start_fails=10) for i in range(4)]
            sup, clock = make_supervisor(
                workers,
                restart_policy=RetryPolicy(max_attempts=1000, base_delay=1.0,
                                           jitter=0.5),
                breaker_threshold=100,
            )
            await sup.start()
            dues = {sup.state_of(w.worker_id).next_restart_at
                    for w in workers}
            # Seeded jitter: the fleet does not restart in lockstep.
            assert len(dues) == 4
            assert all(0.5 <= due <= 1.5 for due in dues)

        run(scenario())

    def test_callbacks_fire_on_transitions(self):
        async def scenario():
            worker = FakeWorker("w0")
            events = []
            sup, clock = make_supervisor(
                [worker], flap_window=0.0,
                on_up=lambda w: events.append(("up", w)),
                on_down=lambda w: events.append(("down", w)),
            )
            await sup.start()
            worker.alive = False
            await sup.check_once()
            clock.advance(10.0)
            await sup.check_once()
            assert events == [("up", "w0"), ("down", "w0"), ("up", "w0")]

        run(scenario())

    def test_report_failure_acts_like_failed_probe(self):
        async def scenario():
            worker = FakeWorker("w0")
            sup, clock = make_supervisor([worker], flap_window=0.0)
            await sup.start()
            worker.alive = False
            sup.report_failure("w0")  # the router saw the crash first
            assert sup.healthy_workers() == ()
            sup.report_failure("w0")  # idempotent on a down worker
            assert sup.state_of("w0").next_restart_at is not None

        run(scenario())


class TestCircuitBreaker:
    def test_unit_walk(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0,
                                 clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_failure()  # probe failed: open again, full timeout
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_flapping_worker_trips_breaker_and_recovers(self):
        async def scenario():
            worker = FakeWorker("w0")
            sup, clock = make_supervisor(
                [worker],
                restart_policy=RetryPolicy(max_attempts=1000, base_delay=1.0),
                breaker_threshold=3, breaker_reset=100.0, flap_window=5.0,
            )
            await sup.start()
            state = sup.state_of("w0")

            # Three fast crashes (each within the flap window of its start).
            for _ in range(3):
                clock.advance(0.5)
                worker.alive = False
                await sup.check_once()  # detect flap
                if state.breaker.state == "open":
                    break
                clock.advance(state.next_restart_at - clock.now())
                await sup.check_once()  # restart
            assert state.breaker.state == "open"

            # While open, due restarts are suppressed.
            clock.advance(50.0)
            await sup.check_once()
            assert not state.healthy
            started_before = worker.started

            # After the reset timeout, one half-open probe restart goes out.
            clock.advance(50.0)
            await sup.check_once()
            assert worker.started == started_before + 1
            assert state.healthy
            assert state.breaker.state == "half_open"

            # Sustained uptime past the flap window closes the breaker.
            clock.advance(5.0)
            await sup.check_once()
            assert state.breaker.state == "closed"

        run(scenario())

    def test_slow_crashes_do_not_trip_breaker(self):
        async def scenario():
            worker = FakeWorker("w0")
            sup, clock = make_supervisor(
                [worker], breaker_threshold=2, flap_window=5.0,
            )
            await sup.start()
            state = sup.state_of("w0")
            for _ in range(5):
                clock.advance(60.0)  # honest uptime before each crash
                worker.alive = False
                await sup.check_once()
                clock.advance(state.next_restart_at - clock.now())
                await sup.check_once()
            assert state.breaker.state == "closed"
            assert state.healthy

        run(scenario())


class TestLifecycle:
    def test_stop_terminates_workers(self):
        async def scenario():
            workers = [FakeWorker("w0"), FakeWorker("w1")]
            sup, clock = make_supervisor(workers)
            await sup.start()
            await sup.stop()
            assert all(w.stopped == 1 for w in workers)
            assert sup.healthy_workers() == ()

        run(scenario())

    def test_status_snapshot(self):
        async def scenario():
            sup, clock = make_supervisor([FakeWorker("w0")])
            await sup.start()
            (snap,) = sup.status()
            assert snap["worker"] == "w0"
            assert snap["healthy"] and snap["running"]
            assert snap["breaker"]["state"] == "closed"

        run(scenario())

    def test_failed_initial_start_enters_restart_loop(self):
        async def scenario():
            worker = FakeWorker("w0", start_fails=1)
            sup, clock = make_supervisor([worker], flap_window=0.0)
            await sup.start()
            assert sup.healthy_workers() == ()
            state = sup.state_of("w0")
            clock.advance(state.next_restart_at - clock.now())
            await sup.check_once()
            assert state.healthy

        run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerSupervisor([], health_interval=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)
