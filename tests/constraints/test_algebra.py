"""Tests for the CONSTR constraint algebra (Definition 3.2)."""

import pytest

from repro.constraints.algebra import (
    And,
    Or,
    Primitive,
    SerialConstraint,
    absent,
    conj,
    constraint_events,
    disj,
    must,
    order,
    serial,
    walk_constraint,
)
from repro.errors import ConstraintError


class TestConstructors:
    def test_must(self):
        c = must("a")
        assert isinstance(c, Primitive) and c.positive and c.event == "a"

    def test_absent(self):
        c = absent("a")
        assert isinstance(c, Primitive) and not c.positive

    def test_order(self):
        c = order("a", "b")
        assert isinstance(c, SerialConstraint) and c.events == ("a", "b")

    def test_serial_many(self):
        c = serial("a", "b", "c")
        assert isinstance(c, SerialConstraint) and c.events == ("a", "b", "c")

    def test_serial_single_collapses_to_must(self):
        assert serial("a") == must("a")

    def test_serial_rejects_repeats(self):
        with pytest.raises(ConstraintError):
            serial("a", "b", "a")

    def test_serial_needs_two(self):
        with pytest.raises(ConstraintError):
            SerialConstraint(("a",))

    def test_empty_event_rejected(self):
        with pytest.raises(ConstraintError):
            must("")


class TestBooleanStructure:
    def test_conj_flattens_and_dedupes(self):
        c = conj(must("a"), conj(must("b"), must("a")))
        assert c == And((must("a"), must("b")))

    def test_disj_flattens_and_dedupes(self):
        c = disj(absent("a"), disj(absent("a"), absent("b")))
        assert c == Or((absent("a"), absent("b")))

    def test_single_part_unwraps(self):
        assert conj(must("a")) == must("a")
        assert disj(must("a")) == must("a")

    def test_no_parts_rejected(self):
        with pytest.raises(ConstraintError):
            conj()
        with pytest.raises(ConstraintError):
            disj()

    def test_operator_dsl(self):
        assert (must("a") & must("b")) == And((must("a"), must("b")))
        assert (must("a") | must("b")) == Or((must("a"), must("b")))

    def test_invert_delegates_to_negate(self):
        assert ~must("a") == absent("a")
        assert ~absent("a") == must("a")

    def test_raw_constructors_require_arity(self):
        with pytest.raises(ConstraintError):
            And((must("a"),))
        with pytest.raises(ConstraintError):
            Or((must("a"),))


class TestIntrospection:
    def test_constraint_events(self):
        c = conj(order("a", "b"), disj(absent("c"), must("d")))
        assert constraint_events(c) == frozenset({"a", "b", "c", "d"})

    def test_walk(self):
        c = conj(must("a"), disj(must("b"), must("c")))
        nodes = list(walk_constraint(c))
        assert nodes[0] == c
        assert must("b") in nodes

    def test_str_forms(self):
        assert str(must("a")) == "happens(a)"
        assert str(absent("a")) == "never(a)"
        assert str(order("a", "b")) == "precedes(a, b)"
        assert "and" in str(conj(must("a"), must("b")))
        assert "or" in str(disj(must("a"), must("b")))
