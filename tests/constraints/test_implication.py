"""Tests for workflow-independent constraint implication."""

import itertools

from hypothesis import given, settings

from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.implication import (
    equivalent,
    find_witness,
    implies,
    is_satisfiable,
)
from repro.constraints.klein import klein_existence, klein_order
from repro.constraints.normalize import negate, normalize, to_dnf
from repro.constraints.satisfy import satisfies
from tests.conftest import constraints_over

EVENTS = ("a", "b", "c", "d")


class TestSatisfiability:
    def test_witness_found(self):
        witness = find_witness([order("a", "b"), must("c")])
        assert witness is not None
        assert satisfies(witness, order("a", "b"))
        assert satisfies(witness, must("c"))

    def test_unsatisfiable_cycle(self):
        assert not is_satisfiable([order("a", "b"), order("b", "a")])

    def test_contradictory_primitives(self):
        assert not is_satisfiable([must("a"), absent("a")])

    def test_three_way_cycle(self):
        assert not is_satisfiable(
            [order("a", "b"), order("b", "c"), order("c", "a")]
        )

    def test_empty_set_is_satisfiable(self):
        assert find_witness([absent("a")]) == ()


class TestImplication:
    def test_order_implies_klein_order(self):
        assert implies(order("a", "b"), klein_order("a", "b"))
        assert not implies(klein_order("a", "b"), order("a", "b"))

    def test_serial_transitivity(self):
        assert implies(serial("a", "b", "c"), order("a", "c"))

    def test_order_implies_existence(self):
        assert implies(order("a", "b"), must("a"))
        assert implies(order("a", "b"), klein_existence("a", "b"))

    def test_conjunction_of_premises(self):
        premises = [klein_order("a", "b"), must("a"), must("b")]
        assert implies(premises, order("a", "b"))

    def test_fresh_event_in_conclusion(self):
        # Premises say nothing about c: cannot entail its presence.
        assert not implies(order("a", "b"), must("c"))

    def test_everything_implies_tautology(self):
        tautology = disj(must("a"), absent("a"))
        assert implies([order("b", "c")], tautology)

    def test_contradiction_implies_anything(self):
        contradiction = [must("a"), absent("a")]
        assert implies(contradiction, order("x", "y"))


class TestEquivalence:
    def test_normalize_preserves_equivalence(self):
        c = conj(serial("a", "b", "c"), disj(absent("d"), must("a")))
        assert equivalent(c, normalize(c))

    def test_dnf_preserves_equivalence(self):
        c = conj(disj(must("a"), must("b")), klein_order("a", "c"))
        assert equivalent(c, to_dnf(c).to_constraint())

    def test_double_negation(self):
        c = disj(order("a", "b"), absent("c"))
        assert equivalent(c, negate(negate(c)))

    def test_inequivalent(self):
        assert not equivalent(must("a"), absent("a"))

    @settings(max_examples=40, deadline=None)
    @given(constraints_over(EVENTS[:3]))
    def test_negation_never_equivalent(self, constraint):
        assert not equivalent(constraint, negate(constraint))


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(constraints_over(EVENTS[:3]), constraints_over(EVENTS[:3]))
    def test_implication_matches_enumeration(self, premise, conclusion):
        alphabet = EVENTS[:3]
        brute = all(
            satisfies(trace, conclusion)
            for size in range(len(alphabet) + 1)
            for subset in itertools.combinations(alphabet, size)
            for trace in itertools.permutations(subset)
            if satisfies(trace, premise)
        )
        assert implies(premise, conclusion, events=alphabet) == brute
