"""Tests for the paper-notation constraint renderer."""

from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.klein import klein_order
from repro.constraints.pretty import pretty_constraint


class TestPrettyConstraint:
    def test_primitives(self):
        assert pretty_constraint(must("e")) == "∇e"
        assert pretty_constraint(absent("e")) == "¬∇e"

    def test_order(self):
        assert pretty_constraint(order("a", "b")) == "∇a ⊗ ∇b"

    def test_long_serial(self):
        assert pretty_constraint(serial("a", "b", "c")) == "∇a ⊗ ∇b ⊗ ∇c"

    def test_conjunction(self):
        assert pretty_constraint(conj(must("a"), must("b"))) == "∇a ∧ ∇b"

    def test_disjunction_with_serial(self):
        got = pretty_constraint(disj(absent("e"), order("e", "f")))
        assert got == "¬∇e ∨ (∇e ⊗ ∇f)"

    def test_klein_order_matches_paper(self):
        # The paper writes Klein's order constraint ¬∇e ∨ ¬∇f ∨ (∇e ⊗ ∇f).
        assert pretty_constraint(klein_order("e", "f")) == "¬∇e ∨ ¬∇f ∨ (∇e ⊗ ∇f)"

    def test_nested_precedence(self):
        got = pretty_constraint(conj(disj(must("a"), must("b")), must("c")))
        assert got == "(∇a ∨ ∇b) ∧ ∇c"

    def test_and_inside_or_is_parenthesised(self):
        got = pretty_constraint(disj(conj(must("a"), must("b")), absent("c")))
        assert got == "(∇a ∧ ∇b) ∨ ¬∇c"
