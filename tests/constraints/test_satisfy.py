"""Tests for trace satisfaction and the three-valued prefix evaluator."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.satisfy import PrefixEvaluator, Verdict, satisfies
from tests.conftest import EVENT_POOL, constraints_over

EVENTS = EVENT_POOL[:4]


class TestSatisfies:
    def test_must(self):
        assert satisfies(("a", "b"), must("a"))
        assert not satisfies(("b",), must("a"))

    def test_absent(self):
        assert satisfies(("b",), absent("a"))
        assert not satisfies(("a",), absent("a"))

    def test_order(self):
        assert satisfies(("a", "x", "b"), order("a", "b"))
        assert not satisfies(("b", "a"), order("a", "b"))
        assert not satisfies(("a",), order("a", "b"))
        assert not satisfies((), order("a", "b"))

    def test_long_serial(self):
        c = serial("a", "b", "c")
        assert satisfies(("a", "b", "c"), c)
        assert satisfies(("a", "x", "b", "y", "c"), c)
        assert not satisfies(("a", "c", "b"), c)

    def test_and_or(self):
        c = conj(must("a"), must("b"))
        assert satisfies(("a", "b"), c)
        assert not satisfies(("a",), c)
        d = disj(must("a"), must("b"))
        assert satisfies(("b",), d)
        assert not satisfies(("c",), d)

    def test_empty_trace(self):
        assert satisfies((), absent("a"))
        assert not satisfies((), must("a"))


class TestVerdict:
    def test_verdict_is_not_boolean(self):
        with pytest.raises(TypeError):
            bool(Verdict.TRUE)


class TestPrefixEvaluator:
    def test_must_unknown_until_seen(self):
        ev = PrefixEvaluator()
        assert ev.verdict(must("a")) is Verdict.UNKNOWN
        ev.observe("a")
        assert ev.verdict(must("a")) is Verdict.TRUE

    def test_absent_false_once_seen(self):
        ev = PrefixEvaluator()
        assert ev.verdict(absent("a")) is Verdict.UNKNOWN
        ev.observe("a")
        assert ev.verdict(absent("a")) is Verdict.FALSE

    def test_order_violated_by_early_second(self):
        ev = PrefixEvaluator()
        ev.observe("b")
        assert ev.verdict(order("a", "b")) is Verdict.FALSE

    def test_order_true_when_complete(self):
        ev = PrefixEvaluator()
        ev.observe("a")
        assert ev.verdict(order("a", "b")) is Verdict.UNKNOWN
        ev.observe("b")
        assert ev.verdict(order("a", "b")) is Verdict.TRUE

    def test_three_valued_connectives(self):
        ev = PrefixEvaluator()
        ev.observe("a")
        c = conj(must("a"), must("b"))
        assert ev.verdict(c) is Verdict.UNKNOWN
        d = disj(must("a"), must("b"))
        assert ev.verdict(d) is Verdict.TRUE
        e = conj(absent("a"), must("b"))
        assert ev.verdict(e) is Verdict.FALSE

    def test_final_matches_satisfies(self):
        ev = PrefixEvaluator()
        for event in ("b", "a", "c"):
            ev.observe(event)
        c = conj(order("b", "a"), absent("d"))
        assert ev.final(c) == satisfies(("b", "a", "c"), c)

    def test_seen_and_length(self):
        ev = PrefixEvaluator()
        ev.observe("x")
        assert ev.seen("x") and not ev.seen("y")
        assert ev.prefix_length == 1


class TestVerdictPermanence:
    """Decisive verdicts must be stable under any continuation."""

    @given(
        constraints_over(EVENTS),
        st.permutations(list(EVENTS)),
        st.integers(0, len(EVENTS)),
    )
    def test_decided_verdicts_are_final(self, constraint, full_trace, cut):
        prefix, suffix = full_trace[:cut], full_trace[cut:]
        ev = PrefixEvaluator()
        for event in prefix:
            ev.observe(event)
        verdict = ev.verdict(constraint)
        outcome = satisfies(tuple(full_trace), constraint)
        if verdict is Verdict.TRUE:
            assert outcome
        elif verdict is Verdict.FALSE:
            assert not outcome

    @given(constraints_over(EVENTS))
    def test_unknown_resolves_both_ways_or_is_tight(self, constraint):
        # For any constraint, the set of verdicts over all prefixes must be
        # consistent: once TRUE/FALSE, later prefixes agree.
        for perm in itertools.permutations(EVENTS):
            ev = PrefixEvaluator()
            decided = None
            for event in perm:
                ev.observe(event)
                verdict = ev.verdict(constraint)
                if decided is not None:
                    assert verdict is decided
                elif verdict in (Verdict.TRUE, Verdict.FALSE):
                    decided = verdict
