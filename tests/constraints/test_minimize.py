"""Tests for constraint-set minimization."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.algebra import must, order
from repro.constraints.klein import klein_order
from repro.constraints.minimize import minimize_constraints
from repro.core.apply import apply_all
from repro.core.excise import excise
from repro.core.verify import redundant_constraints
from repro.ctr.formulas import atoms, event_names
from repro.ctr.simplify import is_failure
from repro.ctr.traces import TooManyTracesError, count_traces, traces
from repro.workflows.release import release_specification
from tests.conftest import constraints_over, unique_event_goals

A, B, C = atoms("a b c")


def legal_traces(goal, constraints):
    compiled = excise(apply_all(list(constraints), goal))
    return frozenset() if is_failure(compiled) else traces(compiled)


class TestMinimize:
    def test_drops_implied_constraint(self):
        # Since a and b always occur in this goal, each constraint implies
        # the other *relative to the workflow* - exactly one survives.
        goal = (A | B) >> C
        constraints = [order("a", "b"), klein_order("a", "b")]
        minimal = minimize_constraints(goal, constraints)
        assert len(minimal) == 1
        assert legal_traces(goal, minimal) == legal_traces(goal, constraints)

    def test_keeps_independent_constraints(self):
        goal = A | B | C
        constraints = [order("a", "b"), order("b", "c")]
        assert minimize_constraints(goal, constraints) == constraints

    def test_structurally_implied_dropped(self):
        goal = A >> B
        constraints = [klein_order("a", "b"), must("a")]
        assert minimize_constraints(goal, constraints) == []

    def test_mutually_redundant_pair_keeps_one(self):
        # Each implies the other here (both hold structurally), but a
        # batch filter would drop both; greedy keeps the semantics.
        goal = (A | B) >> C
        constraints = [order("a", "b"), order("a", "b") & must("c")]
        minimal = minimize_constraints(goal, constraints)
        assert legal_traces(goal, minimal) == legal_traces(goal, constraints)
        assert len(minimal) <= len(constraints)

    def test_prefer_ranks_removal_order(self):
        goal = (A | B) >> C
        c_strong = order("a", "b")
        c_weak = klein_order("a", "b")
        # Prefer keeping the weak one: removal attempted on c_strong first,
        # which is NOT implied by the weak one, so both orders still end
        # with the strong constraint retained.
        minimal = minimize_constraints(
            goal, [c_strong, c_weak], prefer=lambda c: 1.0 if c == c_weak else 0.0
        )
        assert legal_traces(goal, minimal) == legal_traces(goal, [c_strong, c_weak])

    def test_release_pipeline_shrinks(self):
        goal, constraints = release_specification()
        minimal = minimize_constraints(goal, constraints)
        assert len(minimal) < len(constraints)
        assert redundant_constraints(goal, minimal) == []


class TestMinimizeProperties:
    @settings(max_examples=30, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_semantics_preserved(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraints = [data.draw(constraints_over(events)) for _ in range(3)]
        # Sync tokens can make the trace set explode combinatorially; skip
        # such examples up front (saturated count) or when a constrained
        # compile still blows the enumeration budget.
        assume(count_traces(goal, max_traces=20_000).exact)
        minimal = minimize_constraints(goal, constraints)
        try:
            before = legal_traces(goal, constraints)
            after = legal_traces(goal, minimal)
        except TooManyTracesError:
            assume(False)
        assert after == before
        assert len(minimal) <= len(constraints)

    @settings(max_examples=20, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_result_is_irredundant(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraints = [data.draw(constraints_over(events)) for _ in range(3)]
        minimal = minimize_constraints(goal, constraints)
        assert redundant_constraints(goal, minimal) == []
