"""Tests for the Klein/Section-3 constraint idiom catalogue.

Each idiom is validated against its informal reading on an exhaustive set
of small unique-event traces.
"""

import itertools

from repro.constraints.klein import (
    both_occur,
    causes,
    exactly_one,
    klein_existence,
    klein_order,
    mutually_exclusive,
    not_after,
    requires_prior,
)
from repro.constraints.satisfy import satisfies

TRACES = [
    perm
    for size in range(4)
    for subset in itertools.combinations(("e", "f", "x"), size)
    for perm in itertools.permutations(subset)
]


def holds_on(constraint):
    return {t for t in TRACES if satisfies(t, constraint)}


class TestKleinOrder:
    def test_reading(self):
        # "if both occur, e comes first" — traces without both are fine.
        c = klein_order("e", "f")
        for trace in TRACES:
            expected = True
            if "e" in trace and "f" in trace:
                expected = trace.index("e") < trace.index("f")
            assert satisfies(trace, c) == expected


class TestKleinExistence:
    def test_reading(self):
        # "if e occurs then f must occur (before or after)"
        c = klein_existence("e", "f")
        for trace in TRACES:
            expected = ("e" not in trace) or ("f" in trace)
            assert satisfies(trace, c) == expected


class TestBothOccur:
    def test_reading(self):
        c = both_occur("e", "f")
        for trace in TRACES:
            assert satisfies(trace, c) == ("e" in trace and "f" in trace)


class TestMutuallyExclusive:
    def test_reading(self):
        c = mutually_exclusive("e", "f")
        for trace in TRACES:
            assert satisfies(trace, c) == (not ("e" in trace and "f" in trace))


class TestCauses:
    def test_reading(self):
        # "if e occurs, f must occur later"
        c = causes("e", "f")
        for trace in TRACES:
            if "e" not in trace:
                expected = True
            else:
                expected = "f" in trace and trace.index("e") < trace.index("f")
            assert satisfies(trace, c) == expected


class TestRequiresPrior:
    def test_reading(self):
        # "if f occurred, e occurred before it"
        c = requires_prior("f", "e")
        for trace in TRACES:
            if "f" not in trace:
                expected = True
            else:
                expected = "e" in trace and trace.index("e") < trace.index("f")
            assert satisfies(trace, c) == expected


class TestNotAfter:
    def test_reading(self):
        # "f cannot occur after e"
        c = not_after("e", "f")
        for trace in TRACES:
            violated = (
                "e" in trace and "f" in trace and trace.index("e") < trace.index("f")
            )
            assert satisfies(trace, c) == (not violated)


class TestExactlyOne:
    def test_reading(self):
        c = exactly_one("e", "f")
        for trace in TRACES:
            assert satisfies(trace, c) == (("e" in trace) != ("f" in trace))
