"""Tests for the constraint text syntax."""

import pytest
from hypothesis import given

from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.parser import parse_constraint
from repro.constraints.satisfy import satisfies
from repro.errors import ParseError
from tests.conftest import EVENT_POOL, constraints_over
from tests.constraints.test_normalize import all_unique_traces


class TestBasics:
    def test_happens(self):
        assert parse_constraint("happens(a)") == must("a")

    def test_never(self):
        assert parse_constraint("never(a)") == absent("a")

    def test_precedes(self):
        assert parse_constraint("precedes(a, b)") == order("a", "b")
        assert parse_constraint("precedes(a, b, c)") == serial("a", "b", "c")

    def test_and_or(self):
        got = parse_constraint("happens(a) and never(b) or precedes(c, d)")
        assert got == disj(conj(must("a"), absent("b")), order("c", "d"))

    def test_parentheses(self):
        got = parse_constraint("happens(a) and (never(b) or happens(c))")
        assert got == conj(must("a"), disj(absent("b"), must("c")))

    def test_not_compiles_to_constr(self):
        got = parse_constraint("not precedes(a, b)")
        assert got == disj(absent("a"), absent("b"), order("b", "a"))


class TestErrors:
    def test_trailing(self):
        with pytest.raises(ParseError):
            parse_constraint("happens(a) happens(b)")

    def test_precedes_needs_two(self):
        with pytest.raises(ParseError):
            parse_constraint("precedes(a)")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_constraint("happens(a")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_constraint("!!!")


class TestRoundTrip:
    @given(constraints_over(EVENT_POOL[:4]))
    def test_str_parse_semantics(self, constraint):
        # str() output round-trips to a semantically equal constraint.
        reparsed = parse_constraint(str(constraint))
        for trace in all_unique_traces(EVENT_POOL[:4]):
            assert satisfies(trace, constraint) == satisfies(trace, reparsed)
