"""Tests for the Singh event-algebra mapping (intertask dependencies)."""

from repro.constraints.satisfy import satisfies
from repro.constraints.singh import (
    Task,
    abort_dependency,
    begin_dependency,
    commit_dependency,
    compensation_dependency,
    exclusion_dependency,
    serial_dependency,
    strong_commit_dependency,
)
from repro.ctr.traces import traces

T1 = Task("t1")
T2 = Task("t2")


class TestTask:
    def test_event_names(self):
        assert T1.start == "start_t1"
        assert T1.commit == "commit_t1"
        assert T1.abort == "abort_t1"

    def test_skeleton_traces(self):
        assert traces(T1.skeleton()) == {
            ("start_t1", "commit_t1"),
            ("start_t1", "abort_t1"),
        }


class TestDependencies:
    def test_commit_dependency(self):
        c = commit_dependency(T1, on=T2)
        assert satisfies(("commit_t2", "commit_t1"), c)
        assert not satisfies(("commit_t1", "commit_t2"), c)
        assert satisfies(("commit_t1",), c)  # only one commits: fine

    def test_strong_commit_dependency(self):
        c = strong_commit_dependency(T1, on=T2)
        assert satisfies(("commit_t2", "commit_t1"), c)
        assert not satisfies(("commit_t2",), c)
        assert satisfies((), c)

    def test_abort_dependency(self):
        c = abort_dependency(T1, on=T2)
        assert not satisfies(("abort_t2",), c)
        assert satisfies(("abort_t2", "abort_t1"), c)
        assert satisfies(("commit_t2",), c)

    def test_begin_dependency(self):
        c = begin_dependency(T1, on=T2)
        assert satisfies(("start_t2", "start_t1"), c)
        assert not satisfies(("start_t1", "start_t2"), c)
        assert satisfies((), c)

    def test_serial_dependency(self):
        c = serial_dependency(T1, T2)
        assert satisfies(("commit_t1", "start_t2"), c)
        assert satisfies(("abort_t1", "start_t2"), c)
        assert not satisfies(("start_t2", "commit_t1"), c)
        assert satisfies(("start_t1",), c)

    def test_exclusion_dependency(self):
        c = exclusion_dependency(T1, T2)
        assert satisfies(("commit_t1",), c)
        assert not satisfies(("commit_t1", "commit_t2"), c)

    def test_compensation_dependency(self):
        comp = Task("undo")
        c = compensation_dependency(T1, comp)
        assert satisfies((), c)
        assert satisfies(("commit_t1", "start_undo", "commit_undo"), c)
        # Compensator before the commit is invalid.
        assert not satisfies(("start_undo", "commit_t1", "commit_undo"), c)
        # Compensator that starts must commit.
        assert not satisfies(("commit_t1", "start_undo"), c)
