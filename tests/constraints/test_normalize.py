"""Tests for Proposition 3.3, Lemma 3.4, and Corollary 3.5.

Semantic equivalences are checked exhaustively over all permutations and
subsets of a small event vocabulary, which is a complete check under the
unique-event assumption.
"""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.algebra import (
    And,
    Or,
    SerialConstraint,
    absent,
    conj,
    disj,
    must,
    order,
    serial,
)
from repro.constraints.normalize import (
    dnf_parameters,
    negate,
    normalize,
    split_serial,
    to_dnf,
)
from repro.constraints.satisfy import satisfies
from tests.conftest import EVENT_POOL, constraints_over

EVENTS = EVENT_POOL[:4]


def all_unique_traces(events=EVENTS):
    """Every unique-event trace over subsets of ``events``."""
    for size in range(len(events) + 1):
        for subset in itertools.combinations(events, size):
            for perm in itertools.permutations(subset):
                yield perm


class TestSplitSerial:
    def test_two_events_unchanged(self):
        c = order("a", "b")
        assert split_serial(c) == c

    def test_three_events(self):
        got = split_serial(SerialConstraint(("a", "b", "c")))
        assert got == conj(order("a", "b"), order("b", "c"))

    def test_split_preserves_semantics(self):
        original = SerialConstraint(tuple(EVENTS))
        split = split_serial(original)
        for trace in all_unique_traces():
            assert satisfies(trace, original) == satisfies(trace, split)


class TestNegation:
    def test_negate_primitives(self):
        assert negate(must("a")) == absent("a")
        assert negate(absent("a")) == must("a")

    def test_negate_order_is_lemma_3_4(self):
        got = negate(order("a", "b"))
        assert got == disj(absent("a"), absent("b"), order("b", "a"))

    def test_de_morgan(self):
        c = conj(must("a"), must("b"))
        assert negate(c) == disj(absent("a"), absent("b"))
        d = disj(must("a"), must("b"))
        assert negate(d) == conj(absent("a"), absent("b"))

    def test_double_negation_semantics(self):
        c = conj(order("a", "b"), disj(absent("c"), must("d")))
        double = negate(negate(c))
        for trace in all_unique_traces():
            assert satisfies(trace, c) == satisfies(trace, double)

    @given(constraints_over(EVENTS))
    def test_negation_complements_satisfaction(self, constraint):
        negated = negate(constraint)
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) != satisfies(trace, negated)

    def test_negate_long_serial(self):
        c = serial("a", "b", "c")
        negated = negate(c)
        for trace in all_unique_traces():
            assert satisfies(trace, c) != satisfies(trace, negated)


class TestNormalize:
    def test_splits_nested_serials(self):
        c = disj(serial("a", "b", "c"), must("d"))
        normalized = normalize(c)
        for node in _leaves(normalized):
            if isinstance(node, SerialConstraint):
                assert len(node.events) == 2

    @given(constraints_over(EVENTS))
    def test_normalize_preserves_semantics(self, constraint):
        normalized = normalize(constraint)
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) == satisfies(trace, normalized)


class TestDnf:
    def test_primitive_is_single_clause(self):
        dnf = to_dnf(must("a"))
        assert dnf.clauses == ((must("a"),),)
        assert dnf.width == 1

    def test_distribution(self):
        c = conj(disj(must("a"), must("b")), must("c"))
        dnf = to_dnf(c)
        assert dnf.width == 2

    @given(constraints_over(EVENTS))
    def test_dnf_preserves_semantics(self, constraint):
        back = to_dnf(constraint).to_constraint()
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) == satisfies(trace, back)

    def test_dnf_parameters(self):
        constraints = [
            order("a", "b"),                       # d = 1
            disj(absent("a"), order("a", "b")),    # d = 2
            disj(must("a"), must("b"), must("c")),  # d = 3
        ]
        n, d = dnf_parameters(constraints)
        assert n == 3
        assert d == 3

    def test_dnf_parameters_empty(self):
        assert dnf_parameters([]) == (0, 1)


def _leaves(constraint):
    if isinstance(constraint, (And, Or)):
        for part in constraint.parts:
            yield from _leaves(part)
    else:
        yield constraint


class TestSplitDisjuncts:
    def test_widths_and_total(self):
        from repro.constraints.normalize import split_disjuncts

        split = split_disjuncts([
            order("a", "b"),
            disj(absent("a"), order("a", "b")),
            disj(must("a"), must("b"), must("c")),
        ])
        assert split.widths == (1, 2, 3)
        assert split.total == 6
        assert len(list(split.branches())) == 6

    def test_empty_set_has_one_empty_branch(self):
        from repro.constraints.normalize import split_disjuncts

        split = split_disjuncts([])
        assert split.total == 1
        assert list(split.branches()) == [()]
        assert split.branch(0) == ()

    def test_branch_indexing_matches_iteration(self):
        from repro.constraints.normalize import split_disjuncts

        split = split_disjuncts([
            disj(must("a"), must("b")),
            disj(absent("c"), order("a", "c"), must("c")),
        ])
        for index, branch in split.indexed():
            assert split.branch(index) == branch
        with pytest.raises(IndexError):
            split.branch(split.total)
        with pytest.raises(IndexError):
            split.branch(-1)

    def test_chunks_cover_all_branches_in_order(self):
        from repro.constraints.normalize import split_disjuncts

        split = split_disjuncts([
            disj(must("a"), must("b")),
            disj(must("c"), must("d"), absent("a")),
        ])
        flattened = [item for chunk in split.chunks(4) for item in chunk]
        assert flattened == list(split.indexed())
        assert all(len(chunk) <= 4 for chunk in split.chunks(4))

    def test_branches_are_conjunctive(self):
        from repro.constraints.normalize import split_disjuncts
        from repro.constraints.algebra import Or

        split = split_disjuncts([
            disj(conj(must("a"), must("b")), absent("c")),
            order("a", "b"),
        ])
        for branch in split.branches():
            for constraint in branch:
                assert not any(isinstance(leaf, Or) for leaf in _leaves(constraint))

    @given(st.data())
    def test_branch_disjunction_equals_original(self, data):
        """∨ over the branches of split_disjuncts ≡ ∧ of the originals.

        This is Corollary 3.5 lifted to constraint *sets*: a trace satisfies
        every Cᵢ iff it satisfies some fully-conjunctive branch — the fact
        the parallel fan-out relies on.
        """
        from repro.constraints.normalize import split_disjuncts

        events = EVENT_POOL[:4]
        constraints = data.draw(
            st.lists(constraints_over(events), min_size=1, max_size=3)
        )
        split = split_disjuncts(constraints)
        trace = tuple(data.draw(st.permutations(list(events))))
        direct = all(satisfies(trace, c) for c in constraints)
        via_branches = any(
            all(satisfies(trace, c) for c in branch)
            for branch in split.branches()
        )
        assert via_branches == direct
