"""Tests for Proposition 3.3, Lemma 3.4, and Corollary 3.5.

Semantic equivalences are checked exhaustively over all permutations and
subsets of a small event vocabulary, which is a complete check under the
unique-event assumption.
"""

import itertools

from hypothesis import given

from repro.constraints.algebra import (
    And,
    Or,
    SerialConstraint,
    absent,
    conj,
    disj,
    must,
    order,
    serial,
)
from repro.constraints.normalize import (
    dnf_parameters,
    negate,
    normalize,
    split_serial,
    to_dnf,
)
from repro.constraints.satisfy import satisfies
from tests.conftest import EVENT_POOL, constraints_over

EVENTS = EVENT_POOL[:4]


def all_unique_traces(events=EVENTS):
    """Every unique-event trace over subsets of ``events``."""
    for size in range(len(events) + 1):
        for subset in itertools.combinations(events, size):
            for perm in itertools.permutations(subset):
                yield perm


class TestSplitSerial:
    def test_two_events_unchanged(self):
        c = order("a", "b")
        assert split_serial(c) == c

    def test_three_events(self):
        got = split_serial(SerialConstraint(("a", "b", "c")))
        assert got == conj(order("a", "b"), order("b", "c"))

    def test_split_preserves_semantics(self):
        original = SerialConstraint(tuple(EVENTS))
        split = split_serial(original)
        for trace in all_unique_traces():
            assert satisfies(trace, original) == satisfies(trace, split)


class TestNegation:
    def test_negate_primitives(self):
        assert negate(must("a")) == absent("a")
        assert negate(absent("a")) == must("a")

    def test_negate_order_is_lemma_3_4(self):
        got = negate(order("a", "b"))
        assert got == disj(absent("a"), absent("b"), order("b", "a"))

    def test_de_morgan(self):
        c = conj(must("a"), must("b"))
        assert negate(c) == disj(absent("a"), absent("b"))
        d = disj(must("a"), must("b"))
        assert negate(d) == conj(absent("a"), absent("b"))

    def test_double_negation_semantics(self):
        c = conj(order("a", "b"), disj(absent("c"), must("d")))
        double = negate(negate(c))
        for trace in all_unique_traces():
            assert satisfies(trace, c) == satisfies(trace, double)

    @given(constraints_over(EVENTS))
    def test_negation_complements_satisfaction(self, constraint):
        negated = negate(constraint)
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) != satisfies(trace, negated)

    def test_negate_long_serial(self):
        c = serial("a", "b", "c")
        negated = negate(c)
        for trace in all_unique_traces():
            assert satisfies(trace, c) != satisfies(trace, negated)


class TestNormalize:
    def test_splits_nested_serials(self):
        c = disj(serial("a", "b", "c"), must("d"))
        normalized = normalize(c)
        for node in _leaves(normalized):
            if isinstance(node, SerialConstraint):
                assert len(node.events) == 2

    @given(constraints_over(EVENTS))
    def test_normalize_preserves_semantics(self, constraint):
        normalized = normalize(constraint)
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) == satisfies(trace, normalized)


class TestDnf:
    def test_primitive_is_single_clause(self):
        dnf = to_dnf(must("a"))
        assert dnf.clauses == ((must("a"),),)
        assert dnf.width == 1

    def test_distribution(self):
        c = conj(disj(must("a"), must("b")), must("c"))
        dnf = to_dnf(c)
        assert dnf.width == 2

    @given(constraints_over(EVENTS))
    def test_dnf_preserves_semantics(self, constraint):
        back = to_dnf(constraint).to_constraint()
        for trace in all_unique_traces():
            assert satisfies(trace, constraint) == satisfies(trace, back)

    def test_dnf_parameters(self):
        constraints = [
            order("a", "b"),                       # d = 1
            disj(absent("a"), order("a", "b")),    # d = 2
            disj(must("a"), must("b"), must("c")),  # d = 3
        ]
        n, d = dnf_parameters(constraints)
        assert n == 3
        assert d == 3

    def test_dnf_parameters_empty(self):
        assert dnf_parameters([]) == (0, 1)


def _leaves(constraint):
    if isinstance(constraint, (And, Or)):
        for part in constraint.parts:
            yield from _leaves(part)
    else:
        yield constraint
