"""VerifyBatcher: coalescing, dedup, backpressure, deadlines, draining.

Driven without the background consumer task wherever determinism matters:
tests enqueue ``submit`` coroutines as tasks, advance a
:class:`~repro.core.resilience.VirtualClock`, and call
:meth:`~repro.service.batcher.VerifyBatcher.flush` by hand — so expiry
and batching decisions never race wall-clock time.
"""

import asyncio

import pytest

from repro.core.resilience import VirtualClock
from repro.core.verify import verify_property
from repro.obs import Observability
from repro.service.batcher import (
    DeadlineExceededError,
    QueueFullError,
    ServiceDrainingError,
    VerifyBatcher,
)
from repro.service.registry import SpecRegistry

SPEC = """
goal: receive * (credit | stock) * approve
constraint: precedes(credit, approve)
property checked: precedes(credit, approve)
property backwards: precedes(stock, credit)
"""


def run(coro):
    return asyncio.run(coro)


def make_batcher(**kwargs):
    registry = SpecRegistry()
    entry = registry.register("orders", SPEC)
    kwargs.setdefault("batch_window", 0)
    return VerifyBatcher(registry, **kwargs), entry


def props_of(entry, *names):
    by_name = dict(entry.spec.properties)
    return [by_name[name] for name in names]


class TestCoalescing:
    def test_identical_requests_verify_once(self):
        async def scenario():
            batcher, entry = make_batcher()
            props = props_of(entry, "checked", "backwards")
            waiters = [
                asyncio.ensure_future(batcher.submit(entry, props))
                for _ in range(8)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            assert batcher.depth == 16
            await batcher.flush()
            return batcher, await asyncio.gather(*waiters)

        batcher, results = run(scenario())
        # One batch, two unique properties verified, 14 answered for free.
        assert batcher.stats.batches == 1
        assert batcher.stats.verified == 2
        assert batcher.stats.coalesced == 14
        first = results[0]
        assert [r.holds for r in first] == [True, False]
        for other in results[1:]:
            assert [r.holds for r in other] == [True, False]
            # Literally the same result objects: one verification fanned out.
            assert other[0] is first[0] and other[1] is first[1]

    def test_results_are_bit_identical_to_direct_calls(self):
        async def scenario():
            batcher, entry = make_batcher()
            props = props_of(entry, "checked", "backwards")
            waiter = asyncio.ensure_future(batcher.submit(entry, props))
            await asyncio.sleep(0)
            await batcher.flush()
            return entry, props, await waiter

        entry, props, results = run(scenario())
        spec = entry.spec
        for prop, result in zip(props, results):
            direct = verify_property(spec.goal, list(spec.constraints), prop,
                                     rules=spec.rules)
            assert result.holds == direct.holds
            assert result.witness == direct.witness
            assert result.property == direct.property

    def test_different_specs_batch_separately(self):
        async def scenario():
            registry = SpecRegistry()
            orders = registry.register("orders", SPEC)
            claims = registry.register("claims", "goal: submit * review\n"
                                                 "property done: happens(review)\n")
            batcher = VerifyBatcher(registry, batch_window=0)
            w1 = asyncio.ensure_future(
                batcher.submit(orders, props_of(orders, "checked")))
            w2 = asyncio.ensure_future(
                batcher.submit(claims, props_of(claims, "done")))
            await asyncio.sleep(0)
            await batcher.flush()
            return batcher, await w1, await w2

        batcher, orders_results, claims_results = run(scenario())
        assert batcher.stats.batches == 2
        assert orders_results[0].holds and claims_results[0].holds

    def test_requests_get_their_slice_in_order(self):
        async def scenario():
            batcher, entry = make_batcher()
            forward = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked", "backwards")))
            reverse = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "backwards", "checked")))
            await asyncio.sleep(0)
            await batcher.flush()
            return await forward, await reverse

        forward, reverse = run(scenario())
        assert [r.holds for r in forward] == [True, False]
        assert [r.holds for r in reverse] == [False, True]

    def test_compile_failure_fails_every_waiter(self):
        from repro.errors import UniqueEventError

        async def scenario():
            registry = SpecRegistry()
            # `a` occurs twice: compilation raises UniqueEventError.
            entry = registry.register("dup", "goal: a * a\n"
                                             "property p: happens(a)\n")
            batcher = VerifyBatcher(registry, batch_window=0)
            waiters = [
                asyncio.ensure_future(
                    batcher.submit(entry, props_of(entry, "p")))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            await batcher.flush()
            return await asyncio.gather(*waiters, return_exceptions=True)

        outcomes = run(scenario())
        assert all(isinstance(o, UniqueEventError) for o in outcomes)


class TestBackpressure:
    def test_queue_overflow_sheds(self):
        async def scenario():
            batcher, entry = make_batcher(queue_limit=3)
            props = props_of(entry, "checked", "backwards")
            first = asyncio.ensure_future(batcher.submit(entry, props))
            await asyncio.sleep(0)  # 2 queued properties
            with pytest.raises(QueueFullError):
                await batcher.submit(entry, props)  # 2 + 2 > 3: shed
            await batcher.flush()
            await first
            # The queue drained: admission reopens.
            second = asyncio.ensure_future(batcher.submit(entry, props))
            await asyncio.sleep(0)
            await batcher.flush()
            await second
            return batcher

        batcher = run(scenario())
        assert batcher.stats.shed == 2
        assert batcher.stats.accepted == 4

    def test_shed_counts_in_metrics(self):
        obs = Observability.enabled(trace=False, record=False)

        async def scenario():
            batcher, entry = make_batcher(queue_limit=1, obs=obs)
            props = props_of(entry, "checked", "backwards")
            with pytest.raises(QueueFullError):
                await batcher.submit(entry, props)

        run(scenario())
        assert obs.metrics.counter("service.verify.shed").value == 2

    def test_draining_rejects_new_work(self):
        async def scenario():
            batcher, entry = make_batcher()
            await batcher.aclose()
            with pytest.raises(ServiceDrainingError):
                await batcher.submit(entry, props_of(entry, "checked"))

        run(scenario())


class TestDeadlines:
    def test_expired_request_gets_504_not_a_verdict(self):
        async def scenario():
            clock = VirtualClock()
            batcher, entry = make_batcher(clock=clock, default_deadline=10.0)
            expired = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked"), deadline=5.0))
            fresh = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked")))
            await asyncio.sleep(0)
            clock.advance(7.0)  # past 5s, within the 10s default
            await batcher.flush()
            return (
                await asyncio.gather(expired, return_exceptions=True),
                await fresh,
                batcher,
            )

        (expired,), fresh, batcher = run(scenario())
        assert isinstance(expired, DeadlineExceededError)
        assert expired.deadline == 5.0 and expired.waited == 7.0
        assert fresh[0].holds  # the live request still got its verdict
        assert batcher.stats.expired == 1

    def test_no_deadline_never_expires(self):
        async def scenario():
            clock = VirtualClock()
            batcher, entry = make_batcher(clock=clock, default_deadline=None)
            waiter = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked")))
            await asyncio.sleep(0)
            clock.advance(1e9)
            await batcher.flush()
            return await waiter

        assert run(scenario())[0].holds


class TestExpirySweep:
    """Deadline expiry must not wait for a dispatch to happen to look.

    Regression: before the sweeper, a request whose deadline passed while
    the coalescing window was idle (or the queue parked behind a long
    batch) only learned its fate at the *next* dispatch — potentially
    never. The sweep delivers the 504 promptly.
    """

    def test_sweep_expired_by_hand_on_virtual_clock(self):
        async def scenario():
            clock = VirtualClock()
            batcher, entry = make_batcher(clock=clock)
            waiter = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked"),
                               deadline=5.0))
            await asyncio.sleep(0)
            assert batcher.depth == 1
            clock.advance(6.0)
            expired = batcher.sweep_expired()
            result = await asyncio.gather(waiter, return_exceptions=True)
            return batcher, expired, result

        batcher, expired, (result,) = run(scenario())
        assert expired == 1
        assert isinstance(result, DeadlineExceededError)
        # The swept request no longer occupies queue depth or a group.
        assert batcher.depth == 0
        assert not batcher._pending

    def test_sweep_task_delivers_504_while_window_is_idle(self):
        async def scenario():
            clock = VirtualClock()
            # A pathological coalescing window: dispatch would only look
            # at this request a minute from now. The sweeper must not
            # let the deadline wait for it.
            batcher, entry = make_batcher(
                clock=clock, batch_window=60.0, expiry_interval=0.01,
            )
            batcher.start()
            waiter = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked"),
                               deadline=5.0))
            await asyncio.sleep(0)
            clock.advance(6.0)  # deadline passes on the injectable clock
            # Await the verdict with a *wall-clock* bound far below the
            # batch window: only the sweep task can deliver it.
            result = await asyncio.wait_for(
                asyncio.gather(waiter, return_exceptions=True), timeout=5.0
            )
            await batcher.aclose()
            return result

        (result,) = run(scenario())
        assert isinstance(result, DeadlineExceededError)

    def test_sweep_leaves_live_requests_queued(self):
        async def scenario():
            clock = VirtualClock()
            batcher, entry = make_batcher(clock=clock)
            doomed = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked"),
                               deadline=2.0))
            alive = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "backwards"),
                               deadline=100.0))
            await asyncio.sleep(0)
            clock.advance(3.0)
            assert batcher.sweep_expired() == 1
            assert batcher.depth == 1
            await batcher.flush()
            return (
                await asyncio.gather(doomed, return_exceptions=True),
                await alive,
            )

        (doomed,), alive = run(scenario())
        assert isinstance(doomed, DeadlineExceededError)
        assert alive[0].holds is False  # "backwards" got its real verdict

    def test_swept_requests_free_admission_capacity(self):
        async def scenario():
            clock = VirtualClock()
            batcher, entry = make_batcher(clock=clock, queue_limit=2)
            stuck = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked", "backwards"),
                               deadline=1.0))
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                await batcher.submit(entry, props_of(entry, "checked"))
            clock.advance(2.0)
            batcher.sweep_expired()
            # The expired request's cost was returned to the queue budget.
            fresh = asyncio.ensure_future(
                batcher.submit(entry, props_of(entry, "checked")))
            await asyncio.sleep(0)
            await batcher.flush()
            await asyncio.gather(stuck, return_exceptions=True)
            return await fresh

        fresh = run(scenario())
        assert fresh[0].holds

    def test_expiry_interval_validation(self):
        with pytest.raises(ValueError):
            make_batcher(expiry_interval=0)


class TestDraining:
    def test_aclose_completes_accepted_work(self):
        async def scenario():
            batcher, entry = make_batcher(batch_window=0.001)
            batcher.start()
            waiters = [
                asyncio.ensure_future(
                    batcher.submit(entry, props_of(entry, "checked")))
                for _ in range(5)
            ]
            await asyncio.sleep(0)
            await batcher.aclose()
            results = await asyncio.gather(*waiters)
            return batcher, results

        batcher, results = run(scenario())
        assert all(r[0].holds for r in results)
        assert batcher.depth == 0
        assert batcher.stats.accepted == 5

    def test_background_task_batches_concurrent_submitters(self):
        async def scenario():
            batcher, entry = make_batcher(batch_window=0.01)
            batcher.start()
            props = props_of(entry, "checked")
            results = await asyncio.gather(*[
                batcher.submit(entry, props) for _ in range(6)
            ])
            await batcher.aclose()
            return batcher, results

        batcher, results = run(scenario())
        assert all(r[0].holds for r in results)
        # The window coalesced all six concurrent submitters into one batch.
        assert batcher.stats.batches == 1
        assert batcher.stats.verified == 1
        assert batcher.stats.coalesced == 5
