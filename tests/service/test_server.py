"""End-to-end tests of the HTTP daemon via the blocking client.

Each test class gets one service on an ephemeral port, running on a
background thread (the :func:`~repro.service.server.serve_in_thread`
harness the benchmarks and examples use too).
"""

import json
import threading

import pytest

from repro.core.verify import verify_property
from repro.service import ServiceClientError, serve_in_thread
from repro.spec import parse_specification

ORDERS = """
goal: receive * (credit | stock) * approve * archive
constraint: precedes(credit, approve)
property credit_first: precedes(credit, approve)
property archived: happens(archive)
property backwards: precedes(stock, credit)
"""

CLAIMS = """
goal: submit * (triage + fastpath) * settle
property settled: happens(settle)
"""


@pytest.fixture(scope="class")
def service():
    handle = serve_in_thread(batch_window=0.001)
    with handle.client() as client:
        client.register("orders", ORDERS)
        client.register("claims", CLAIMS)
    yield handle
    handle.stop()


class TestEndpoints:
    def test_healthz(self, service):
        with service.client() as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["specs"] == 2
        assert health["queue_limit"] > 0

    def test_specs_listing(self, service):
        with service.client() as client:
            specs = {s["name"]: s for s in client.specs()}
        assert specs["orders"]["properties"] == [
            "credit_first", "archived", "backwards"
        ]
        assert specs["claims"]["version"] == 1

    def test_consistency(self, service):
        with service.client() as client:
            assert client.consistency(spec="orders") is True
            assert client.consistency(
                text="goal: a * b\nconstraint: precedes(b, a)\n"
            ) is False

    def test_compile_reports_sizes(self, service):
        with service.client() as client:
            compiled = client.compile(spec="orders")
        assert compiled["consistent"] is True
        assert compiled["source_size"] > 0
        assert compiled["compiled_size"] >= compiled["source_size"]
        assert "archive" in compiled["compiled"]

    def test_schedule(self, service):
        with service.client() as client:
            out = client.schedule(spec="orders", limit=10)
        assert out["consistent"] is True
        assert len(out["schedules"]) == 2
        for schedule in out["schedules"]:
            assert schedule[0] == "receive" and schedule[-1] == "archive"
            assert schedule.index("credit") < schedule.index("approve")

    def test_verify_matches_direct_library_calls(self, service):
        with service.client() as client:
            out = client.verify(spec="orders")
        spec = parse_specification(ORDERS)
        for (name, prop), result in zip(spec.properties, out["results"]):
            direct = verify_property(spec.goal, list(spec.constraints), prop,
                                     rules=spec.rules)
            assert result["name"] == name
            assert result["holds"] == direct.holds
            witness = list(direct.witness) if direct.witness else None
            assert result["witness"] == witness

    def test_verify_explicit_properties(self, service):
        with service.client() as client:
            out = client.verify(spec="orders",
                                properties=["happens(receive)",
                                            "never(approve)"])
        assert [r["holds"] for r in out["results"]] == [True, False]

    def test_verify_inline_text(self, service):
        with service.client() as client:
            out = client.verify(text=CLAIMS)
        assert out["spec"].startswith("inline:")
        assert out["results"][0]["holds"] is True

    def test_metrics_expositions(self, service):
        with service.client() as client:
            client.verify(spec="claims")
            text = client.metrics()
            data = client.metrics(format="json")
        assert "# TYPE service_verify_batches counter" in text
        assert "service_http_verify_requests" in text
        assert data["counters"]["service.verify.batches"] >= 1
        assert "service.verify.batch_size" in data["histograms"]


class TestErrorMapping:
    def test_unknown_spec_is_404(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify(spec="nope")
        assert excinfo.value.status == 404
        assert "unknown specification" in str(excinfo.value)

    def test_unknown_path_is_404_and_bad_method_405(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", "/bogus")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", "/verify")
            assert excinfo.value.status == 405

    def test_malformed_json_is_400(self, service):
        import http.client

        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=10)
        try:
            conn.request("POST", "/verify", body=b"{ nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_parse_error_in_spec_text_is_400(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify(text="goal: ((((\n")
        assert excinfo.value.status == 400

    def test_missing_target_is_400(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("POST", "/verify", {})
        assert excinfo.value.status == 400


class TestBatchingOverHttp:
    def test_concurrent_identical_requests_coalesce(self, service):
        baseline = service.service.batcher.stats.verified
        results: list[dict] = []
        errors: list[BaseException] = []

        def worker():
            try:
                with service.client() as client:
                    results.append(client.verify(spec="orders"))
            except BaseException as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        first = results[0]["results"]
        for other in results[1:]:
            assert other["results"] == first
        # Dedup did real work: far fewer verifications than 8 clients x 3
        # properties (some batches may split across windows, so don't
        # demand the theoretical minimum of 3).
        verified = service.service.batcher.stats.verified - baseline
        assert verified <= 12


class TestHotReloadOverHttp:
    def test_reregistration_changes_verdicts_and_version(self, service):
        with service.client() as client:
            v1 = client.register("flipflop",
                                 "goal: a * b\nproperty p: precedes(a, b)\n")
            before = client.verify(spec="flipflop")
            v2 = client.register("flipflop",
                                 "goal: b * a\nproperty p: precedes(a, b)\n")
            after = client.verify(spec="flipflop")
        assert (v1["version"], v2["version"]) == (1, 2)
        assert before["results"][0]["holds"] is True
        assert after["results"][0]["holds"] is False
        assert (before["version"], after["version"]) == (1, 2)


class TestSpecsDirectory:
    def test_specs_dir_preloads_and_hot_reloads(self, tmp_path):
        import os

        path = tmp_path / "orders.workflow"
        path.write_text(ORDERS)
        os.utime(path, (100.0, 100.0))
        handle = serve_in_thread(specs_dir=tmp_path, batch_window=0.001)
        try:
            with handle.client() as client:
                assert [s["name"] for s in client.specs()] == ["orders"]
                assert client.verify(spec="orders")["version"] == 1
                path.write_text(ORDERS.replace(
                    "precedes(credit, approve)", "precedes(stock, approve)", 1
                ))
                os.utime(path, (200.0, 200.0))
                assert client.verify(spec="orders")["version"] == 2
        finally:
            handle.stop()


class TestGracefulShutdown:
    def test_draining_stop_answers_all_accepted_requests(self):
        handle = serve_in_thread(batch_window=0.05)
        with handle.client() as setup:
            setup.register("orders", ORDERS)
        results: list[dict] = []
        errors: list[BaseException] = []
        started = threading.Barrier(9)

        def worker():
            client = handle.client()
            try:
                started.wait()
                results.append(client.verify(spec="orders"))
            except BaseException as exc:
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        started.wait()  # all 8 requests in flight (or about to be written)
        # Let the daemon accept work into the batcher queue (the 50ms
        # window parks it there) so the stop drains real requests.
        import time

        deadline = time.monotonic() + 5.0
        while (handle.service.batcher.stats.accepted == 0
               and time.monotonic() < deadline):
            time.sleep(0.001)
        handle.stop(drain=True)
        for thread in threads:
            thread.join()
        # Every request either completed with a verdict or was refused
        # up front with 503 (drain began before it was accepted) / a
        # connection error (drain began before its socket was accepted)
        # — never accepted-then-dropped, never a hung thread.
        for error in errors:
            assert isinstance(error, (ServiceClientError, OSError)), error
            if isinstance(error, ServiceClientError):
                assert error.status == 503
        for out in results:
            assert [r["holds"] for r in out["results"]] == [True, True, False]
        # The accepted-then-drained path really ran: at least one request
        # was answered through the shutdown.
        assert results

    def test_health_reports_draining(self):
        handle = serve_in_thread(batch_window=0.001)
        try:
            with handle.client() as client:
                assert client.healthz()["status"] == "ok"
        finally:
            handle.stop()
        assert handle.service._shutting_down is True
