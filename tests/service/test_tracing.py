"""Distributed tracing through the service: propagation, request ids,
error-outcome spans, the /traces endpoints, and batch span linking."""

import asyncio
import http.client

import pytest

from repro.obs import IdSource, Observability
from repro.obs.context import TraceContext, use_trace_context
from repro.service import ServiceClientError, serve_in_thread
from repro.service.batcher import VerifyBatcher
from repro.service.client import ServiceClient
from repro.service.registry import SpecRegistry

ORDERS = """
goal: receive * (credit | stock) * approve
constraint: precedes(credit, approve)
property credit_first: precedes(credit, approve)
property approved: happens(approve)
"""


def traced_obs(seed: int, segment: str = "service") -> Observability:
    return Observability.enabled(
        trace=True, metrics=True, record=False,
        ids=IdSource(seed=seed), segment=segment, max_spans=10_000,
    )


@pytest.fixture(scope="class")
def service():
    handle = serve_in_thread(batch_window=0.001, obs=traced_obs(31))
    with handle.client() as client:
        client.register("orders", ORDERS)
    yield handle
    handle.stop()


def traced_client(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port, timeout=30.0,
                         ids=IdSource(seed=77))


class TestRequestIds:
    def test_every_response_carries_a_minted_request_id(self, service):
        with service.client() as client:
            client.healthz()
            first = client.last_request_id
            client.healthz()
            second = client.last_request_id
        assert first and second and first != second
        int(first, 16)  # a 16-hex id, not free text
        assert len(first) == 16

    def test_supplied_request_id_is_echoed(self, service):
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=10.0)
        try:
            conn.request("GET", "/healthz",
                         headers={"X-Repro-Request-Id": "my-correlation-id"})
            response = conn.getresponse()
            response.read()
            assert response.headers["X-Repro-Request-Id"] == \
                "my-correlation-id"
        finally:
            conn.close()

    def test_errors_surface_the_request_id(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify(spec="no-such-spec")
        assert excinfo.value.status == 404
        assert excinfo.value.request_id
        assert f"[request {excinfo.value.request_id}]" in str(excinfo.value)


class TestPropagation:
    def test_client_originates_a_trace_the_server_joins(self, service):
        client = traced_client(service)
        try:
            client.verify(spec="orders")
            trace_id = client.last_trace_id
            assert trace_id and len(trace_id) == 32
            assert trace_id in client.traces()
            data = client.trace(trace_id)
        finally:
            client.close()
        assert data["trace_id"] == trace_id
        assert data["segment"] == "service"
        spans = data["spans"]
        names = [s["name"] for s in spans]
        assert "http.verify" in names
        assert "service.verify.batch" in names
        root = next(s for s in spans if s["name"] == "http.verify")
        # The server's span hangs under the client's remote span id.
        assert root["trace_id"] == trace_id
        assert root["parent_ref"] is not None
        assert root["attrs"]["status"] == 200
        assert root["segment"] == "service"
        # The batch span chains off the request span — same trace.
        batch = next(s for s in spans if s["name"] == "service.verify.batch")
        assert batch["trace_id"] == trace_id
        assert batch["parent_ref"] == root["ref"]

    def test_untraced_requests_mint_their_own_trace(self, service):
        before = len(service.service.obs.tracer.spans)
        with service.client() as client:  # no IdSource: no header sent
            client.healthz()
        spans = service.service.obs.tracer.spans[before:]
        health = [s for s in spans if s.name == "http.healthz"]
        assert health and health[-1].trace_id is not None
        assert health[-1].parent_ref is None  # a root: no remote parent


class TestErrorOutcomes:
    def test_error_spans_record_status_and_error_type(self, service):
        with service.client() as client:
            with pytest.raises(ServiceClientError):
                client.verify(spec="no-such-spec")
        spans = [s for s in service.service.obs.tracer.spans
                 if s.name == "http.verify"
                 and s.attrs.get("error_type") is not None]
        assert spans
        failed = spans[-1]
        assert failed.attrs["status"] == 404
        assert failed.attrs["error_type"] == "UnknownSpecError"

    def test_success_spans_record_status_only(self, service):
        with service.client() as client:
            client.healthz()
        span = [s for s in service.service.obs.tracer.spans
                if s.name == "http.healthz"][-1]
        assert span.attrs["status"] == 200
        assert "error_type" not in span.attrs


class TestBatchSpanLinks:
    def test_batch_span_links_every_coalesced_waiter(self):
        obs = traced_obs(5)
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS)
        prop = dict(entry.spec.properties)["credit_first"]
        ctx_a = TraceContext(trace_id="aa" * 16, span_id="11" * 8)
        ctx_b = TraceContext(trace_id="bb" * 16, span_id="22" * 8)

        async def scenario():
            batcher = VerifyBatcher(registry, batch_window=0, obs=obs)
            with use_trace_context(ctx_a):
                first = asyncio.ensure_future(batcher.submit(entry, [prop]))
            with use_trace_context(ctx_b):
                second = asyncio.ensure_future(batcher.submit(entry, [prop]))
            await asyncio.sleep(0)
            await batcher.flush()
            await asyncio.gather(first, second)

        asyncio.run(scenario())
        batch = [s for s in obs.tracer.spans
                 if s.name == "service.verify.batch"]
        assert len(batch) == 1
        span = batch[0]
        # Parent: the first waiter's request span; everyone else: linked.
        assert span.trace_id == ctx_a.trace_id
        assert span.parent_ref == ctx_a.span_id
        assert span.attrs["waiters"] == 2
        assert span.attrs["links"] == [ctx_b.span_id]
        assert span.attrs["key"] == "orders@1"
        # The exemplar names the spec this batch was slow for.
        exemplars = obs.metrics.histogram(
            "service.verify.batch_latency"
        ).summary()["exemplars"]
        assert ["orders@1"] == [label for _, label in exemplars]

    def test_fanout_spans_join_the_batch_trace(self):
        obs = traced_obs(6)
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS)
        by_name = dict(entry.spec.properties)
        props = [by_name["credit_first"], by_name["approved"]]
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)

        async def scenario():
            # jobs=2: the parallel fan-out path, which records the
            # parallel.verify_batch span on the executor thread.
            batcher = VerifyBatcher(registry, batch_window=0, jobs=2,
                                    obs=obs)
            with use_trace_context(ctx):
                waiter = asyncio.ensure_future(batcher.submit(entry, props))
            await asyncio.sleep(0)
            await batcher.flush()
            await waiter

        asyncio.run(scenario())
        spans = obs.tracer.spans
        batch = next(s for s in spans if s.name == "service.verify.batch")
        fanout = [s for s in spans if s.name.startswith("parallel.")]
        # The executor thread re-installed the batch context, so the
        # fan-out spans are stitched into the same distributed trace.
        assert fanout
        assert all(s.trace_id == ctx.trace_id for s in fanout)
        assert any(s.parent_ref == batch.ref for s in fanout)
