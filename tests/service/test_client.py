"""ServiceClient retry semantics against scripted sockets.

The contract under test: a request is re-sent only when it is provably
safe — the connection failed before any bytes reached the server, or the
endpoint is idempotent. A non-idempotent ``POST /specs`` that dies after
bytes went out must surface the failure, never silently re-execute.
"""

import json
import socket
import threading

import pytest

from repro.service.client import ServiceClient


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ScriptedServer:
    """Accepts connections and runs one scripted behavior per connection.

    Behaviors: ``"reset"`` closes the connection as soon as the request
    arrives (bytes went out, no response); ``"ok"`` answers 200 JSON.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.requests = []
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for behavior in self.behaviors:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                # Read the body if a content-length was announced.
                if b"content-length" in data.lower():
                    head, _, tail = data.partition(b"\r\n\r\n")
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length"):
                            length = int(line.split(b":")[1])
                            while len(tail) < length:
                                tail += conn.recv(4096)
                self.requests.append(data)
                if behavior == "ok":
                    payload = json.dumps({"ok": True}).encode()
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(payload)).encode() +
                        b"\r\nConnection: close\r\n\r\n" + payload
                    )
                # "reset": fall out of the with-block -> RST/close mid-request

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5)


class TestConnectFailures:
    def test_connect_refused_is_retried_with_backoff(self):
        # Nothing listens on this port: every attempt fails to connect.
        port = free_port()
        client = ServiceClient("127.0.0.1", port, timeout=1.0,
                               retries=3, backoff=0.01, seed=5)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(OSError):
            client.healthz()
        # 1 try + 3 retries, a backoff sleep between each pair.
        assert len(sleeps) == 3
        # Exponential base with jitter in [0.5, 1.0] of each step.
        for i, slept in enumerate(sleeps):
            step = 0.01 * (2 ** i)
            assert 0.5 * step <= slept <= step

    def test_connect_failure_retries_even_non_idempotent_posts(self):
        # A connect failure means zero bytes reached any server: safe to
        # retry regardless of endpoint semantics.
        port = free_port()
        client = ServiceClient("127.0.0.1", port, timeout=1.0,
                               retries=2, backoff=0)
        attempts = []
        original = client._connection

        def counting():
            attempts.append(1)
            return original()

        client._connection = counting
        with pytest.raises(OSError):
            client.register("orders", "goal: a")
        assert len(attempts) == 3

    def test_retries_zero_fails_fast(self):
        port = free_port()
        client = ServiceClient("127.0.0.1", port, timeout=1.0,
                               retries=0, backoff=0.01)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(OSError):
            client.healthz()
        assert sleeps == []


class TestMidRequestFailures:
    def test_idempotent_post_is_retried_after_reset(self):
        server = ScriptedServer(["reset", "ok"])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0,
                                   retries=2, backoff=0)
            out = client._request("POST", "/verify", {"text": "goal: a"},
                                  idempotent=True)
            assert out == {"ok": True}
            assert len(server.requests) == 2  # first died, second re-sent
        finally:
            server.close()

    def test_non_idempotent_post_is_not_retried_after_reset(self):
        server = ScriptedServer(["reset", "ok"])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0,
                                   retries=5, backoff=0)
            with pytest.raises(Exception):
                client.register("orders", "goal: a")
            # The request went out once and was never re-sent: the server
            # may already have executed it.
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_get_is_idempotent_by_default(self):
        server = ScriptedServer(["reset", "ok"])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0,
                                   retries=1, backoff=0)
            assert client._request("GET", "/healthz") == {"ok": True}
            assert len(server.requests) == 2
        finally:
            server.close()


class TestTenantHeader:
    def test_tenant_header_is_sent(self):
        server = ScriptedServer(["ok"])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0,
                                   tenant="acme")
            client.healthz()
            assert b"X-Repro-Tenant: acme" in server.requests[0]
        finally:
            server.close()

    def test_no_header_without_tenant(self):
        server = ScriptedServer(["ok"])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0)
            client.healthz()
            assert b"X-Repro-Tenant" not in server.requests[0]
        finally:
            server.close()


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ServiceClient("h", 1, retries=-1)
        with pytest.raises(ValueError):
            ServiceClient("h", 1, backoff=-0.1)
