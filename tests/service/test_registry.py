"""SpecRegistry: versioning, memo invalidation, hot reload, inline specs."""

import os

import pytest

from repro.service.registry import SpecRegistry, UnknownSpecError

ORDERS_V1 = """
goal: receive * (credit | stock) * approve
constraint: precedes(credit, approve)
property checked: precedes(credit, approve)
"""

ORDERS_V2 = """
goal: receive * (credit | stock) * approve
constraint: precedes(stock, approve)
property checked: precedes(stock, approve)
"""


class TestRegistration:
    def test_register_and_get(self):
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS_V1)
        assert entry.version == 1
        assert entry.key == "orders@1"
        assert registry.get("orders") is entry
        assert "orders" in registry
        assert registry.names() == ["orders"]

    def test_identical_text_is_a_noop(self):
        registry = SpecRegistry()
        first = registry.register("orders", ORDERS_V1)
        again = registry.register("orders", ORDERS_V1)
        assert again is first
        assert again.version == 1

    def test_changed_text_bumps_version(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        updated = registry.register("orders", ORDERS_V2)
        assert updated.version == 2
        assert updated.key == "orders@2"

    def test_unknown_spec_raises_with_known_names(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        with pytest.raises(UnknownSpecError) as excinfo:
            registry.get("claims")
        assert "orders" in str(excinfo.value)
        # Also a KeyError, so dict-minded callers can catch it naturally.
        assert isinstance(excinfo.value, KeyError)

    def test_parse_error_leaves_registry_unchanged(self):
        from repro.errors import ParseError

        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        with pytest.raises(ParseError):
            registry.register("orders", "goal: ((((\n")
        assert registry.get("orders").version == 1

    def test_unregister(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        assert registry.unregister("orders") is True
        assert registry.unregister("orders") is False
        assert len(registry) == 0


class TestCompiledMemo:
    def test_compile_is_memoized_per_version(self):
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS_V1)
        first = registry.compiled(entry)
        assert registry.compiled(entry) is first

    def test_reregistration_invalidates_the_memo(self):
        registry = SpecRegistry()
        old = registry.register("orders", ORDERS_V1)
        compiled_old = registry.compiled(old)
        new = registry.register("orders", ORDERS_V2)
        compiled_new = registry.compiled(new)
        assert compiled_new is not compiled_old
        assert compiled_new.constraints != compiled_old.constraints
        # The superseded version's memo entry is gone.
        assert old.key not in registry._compiled

    def test_stale_entry_compile_is_not_memoized(self):
        # A compile racing a re-registration must not resurrect the old
        # version's result under a key nobody will invalidate again.
        registry = SpecRegistry()
        old = registry.register("orders", ORDERS_V1)
        registry.register("orders", ORDERS_V2)
        registry.compiled(old)  # still returns a correct result...
        assert old.key not in registry._compiled  # ...but is not memoized

    def test_disk_cache_is_threaded_through(self, tmp_path):
        registry = SpecRegistry(cache=tmp_path / "cache")
        entry = registry.register("orders", ORDERS_V1)
        registry.compiled(entry)
        assert registry.cache.misses == 1
        # A fresh registry (new process, same cache dir) hits the disk.
        other = SpecRegistry(cache=tmp_path / "cache")
        other_entry = other.register("orders", ORDERS_V1)
        other.compiled(other_entry)
        assert other.cache.hits == 1


class TestHotReload:
    def _write(self, path, text, mtime):
        path.write_text(text)
        os.utime(path, (mtime, mtime))

    def test_directory_preload(self, tmp_path):
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        self._write(tmp_path / "claims.spec",
                    "goal: submit * review\n", 100.0)
        (tmp_path / "notes.txt").write_text("not a spec")
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.names() == ["claims", "orders"]

    def test_unparseable_file_is_skipped_at_startup(self, tmp_path):
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        self._write(tmp_path / "broken.workflow", "goal: ((((\n", 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.names() == ["orders"]

    def test_mtime_change_reloads(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.get("orders").version == 1
        self._write(path, ORDERS_V2, 200.0)
        reloaded = registry.get("orders")
        assert reloaded.version == 2
        assert "stock" in str(reloaded.spec.constraints[0])

    def test_unchanged_mtime_does_not_reload(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        # Rewrite content but keep the mtime: the stat check must not fire.
        self._write(path, ORDERS_V2, 100.0)
        assert registry.get("orders") is entry

    def test_file_appearing_after_startup_is_found(self, tmp_path):
        registry = SpecRegistry(specs_dir=tmp_path)
        with pytest.raises(UnknownSpecError):
            registry.get("orders")
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        assert registry.get("orders").version == 1

    def test_vanished_file_keeps_serving_last_good_parse(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        path.unlink()
        assert registry.get("orders") is entry

    def test_mid_edit_garbage_keeps_serving_last_good_parse(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        self._write(path, "goal: ((((\n", 200.0)
        assert registry.get("orders") is entry


class TestDirectoryVanish:
    """Hot reload survives the specs directory itself disappearing —
    a deploy mid-swap or an unmounted volume must not take the daemon
    down with it."""

    def _write(self, path, text, mtime):
        path.write_text(text)
        os.utime(path, (mtime, mtime))

    def test_deleted_directory_keeps_serving_last_good(self, tmp_path):
        import shutil

        specs = tmp_path / "specs"
        specs.mkdir()
        self._write(specs / "orders.workflow", ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=specs)
        entry = registry.get("orders")
        shutil.rmtree(specs)
        # Lookups still answer from the last good parse...
        assert registry.get("orders") is entry
        # ...and a rescan reports nothing rather than raising.
        assert registry.load_directory() == []
        assert registry._dir_missing is True

    def test_recreated_directory_resumes_hot_reload(self, tmp_path):
        import shutil

        specs = tmp_path / "specs"
        specs.mkdir()
        self._write(specs / "orders.workflow", ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=specs)
        assert registry.get("orders").version == 1
        shutil.rmtree(specs)
        registry.load_directory()
        assert registry._dir_missing is True
        # The volume comes back with updated content: reload picks it up.
        specs.mkdir()
        self._write(specs / "orders.workflow", ORDERS_V2, 200.0)
        assert registry.load_directory() == ["orders"]
        assert registry._dir_missing is False
        assert registry.get("orders").version == 2

    def test_vanish_is_logged_once_not_per_lookup(self, tmp_path, caplog):
        import logging
        import shutil

        specs = tmp_path / "specs"
        specs.mkdir()
        self._write(specs / "orders.workflow", ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=specs)
        registry.get("orders")
        shutil.rmtree(specs)
        with caplog.at_level(logging.WARNING, logger="repro.service.registry"):
            for _ in range(5):
                registry.get("orders")
        assert sum("vanished" in r.message for r in caplog.records) == 1

    def test_startup_with_missing_directory_is_tolerated(self, tmp_path):
        registry = SpecRegistry(specs_dir=tmp_path / "never-created")
        assert registry.load_directory() == []
        with pytest.raises(UnknownSpecError):
            registry.get("orders")


class TestTenantView:
    def test_registrations_are_scoped(self):
        registry = SpecRegistry()
        acme = registry.namespaced("acme")
        rival = registry.namespaced("rival")
        entry = acme.register("orders", ORDERS_V1)
        assert entry.name == "acme::orders"
        assert acme.get("orders") is entry
        assert "orders" in acme
        assert "orders" not in rival
        with pytest.raises(UnknownSpecError):
            rival.get("orders")

    def test_shared_catalog_fallback(self):
        registry = SpecRegistry()
        shared = registry.register("orders", ORDERS_V1)
        acme = registry.namespaced("acme")
        # No tenant-scoped entry: the unprefixed catalog answers.
        assert acme.get("orders") is shared
        assert acme.names() == ["orders"]
        # A tenant registration shadows the shared entry for that tenant.
        own = acme.register("orders", ORDERS_V2)
        assert acme.get("orders") is own
        assert registry.namespaced("rival").get("orders") is shared

    def test_separator_in_name_cannot_escape_namespace(self):
        registry = SpecRegistry()
        registry.namespaced("other").register("secret", ORDERS_V1)
        acme = registry.namespaced("acme")
        with pytest.raises(UnknownSpecError):
            acme.get("other::secret")
        assert "other::secret" not in acme
        assert acme.names() == []

    def test_public_name_strips_only_own_prefix(self):
        registry = SpecRegistry()
        acme = registry.namespaced("acme")
        own = acme.register("orders", ORDERS_V1)
        assert acme.public_name(own) == "orders"
        shared = registry.register("claims", ORDERS_V1)
        assert acme.public_name(shared) == "claims"

    def test_tenant_name_validation(self):
        registry = SpecRegistry()
        with pytest.raises(ValueError):
            registry.namespaced("a::b")

    def test_inline_memo_is_shared_across_tenants(self):
        registry = SpecRegistry()
        a = registry.namespaced("acme").resolve_inline("goal: a * b\n")
        b = registry.namespaced("rival").resolve_inline("goal: a * b\n")
        assert a is b  # identical text, identical work


class TestInline:
    def test_identical_text_resolves_to_identical_entry(self):
        registry = SpecRegistry()
        a = registry.resolve_inline("goal: a * b\n")
        b = registry.resolve_inline("goal: a * b\n")
        assert a is b
        assert a.name.startswith("inline:")

    def test_different_text_gets_a_different_key(self):
        registry = SpecRegistry()
        a = registry.resolve_inline("goal: a * b\n")
        b = registry.resolve_inline("goal: b * a\n")
        assert a.key != b.key

    def test_inline_memo_is_bounded(self):
        from repro.service import registry as registry_module

        registry = SpecRegistry()
        for i in range(registry_module._INLINE_MEMO + 10):
            registry.resolve_inline(f"goal: a{i} * b{i}\n")
        assert len(registry._inline) == registry_module._INLINE_MEMO
