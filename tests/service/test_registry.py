"""SpecRegistry: versioning, memo invalidation, hot reload, inline specs."""

import os

import pytest

from repro.service.registry import SpecRegistry, UnknownSpecError

ORDERS_V1 = """
goal: receive * (credit | stock) * approve
constraint: precedes(credit, approve)
property checked: precedes(credit, approve)
"""

ORDERS_V2 = """
goal: receive * (credit | stock) * approve
constraint: precedes(stock, approve)
property checked: precedes(stock, approve)
"""


class TestRegistration:
    def test_register_and_get(self):
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS_V1)
        assert entry.version == 1
        assert entry.key == "orders@1"
        assert registry.get("orders") is entry
        assert "orders" in registry
        assert registry.names() == ["orders"]

    def test_identical_text_is_a_noop(self):
        registry = SpecRegistry()
        first = registry.register("orders", ORDERS_V1)
        again = registry.register("orders", ORDERS_V1)
        assert again is first
        assert again.version == 1

    def test_changed_text_bumps_version(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        updated = registry.register("orders", ORDERS_V2)
        assert updated.version == 2
        assert updated.key == "orders@2"

    def test_unknown_spec_raises_with_known_names(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        with pytest.raises(UnknownSpecError) as excinfo:
            registry.get("claims")
        assert "orders" in str(excinfo.value)
        # Also a KeyError, so dict-minded callers can catch it naturally.
        assert isinstance(excinfo.value, KeyError)

    def test_parse_error_leaves_registry_unchanged(self):
        from repro.errors import ParseError

        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        with pytest.raises(ParseError):
            registry.register("orders", "goal: ((((\n")
        assert registry.get("orders").version == 1

    def test_unregister(self):
        registry = SpecRegistry()
        registry.register("orders", ORDERS_V1)
        assert registry.unregister("orders") is True
        assert registry.unregister("orders") is False
        assert len(registry) == 0


class TestCompiledMemo:
    def test_compile_is_memoized_per_version(self):
        registry = SpecRegistry()
        entry = registry.register("orders", ORDERS_V1)
        first = registry.compiled(entry)
        assert registry.compiled(entry) is first

    def test_reregistration_invalidates_the_memo(self):
        registry = SpecRegistry()
        old = registry.register("orders", ORDERS_V1)
        compiled_old = registry.compiled(old)
        new = registry.register("orders", ORDERS_V2)
        compiled_new = registry.compiled(new)
        assert compiled_new is not compiled_old
        assert compiled_new.constraints != compiled_old.constraints
        # The superseded version's memo entry is gone.
        assert old.key not in registry._compiled

    def test_stale_entry_compile_is_not_memoized(self):
        # A compile racing a re-registration must not resurrect the old
        # version's result under a key nobody will invalidate again.
        registry = SpecRegistry()
        old = registry.register("orders", ORDERS_V1)
        registry.register("orders", ORDERS_V2)
        registry.compiled(old)  # still returns a correct result...
        assert old.key not in registry._compiled  # ...but is not memoized

    def test_disk_cache_is_threaded_through(self, tmp_path):
        registry = SpecRegistry(cache=tmp_path / "cache")
        entry = registry.register("orders", ORDERS_V1)
        registry.compiled(entry)
        assert registry.cache.misses == 1
        # A fresh registry (new process, same cache dir) hits the disk.
        other = SpecRegistry(cache=tmp_path / "cache")
        other_entry = other.register("orders", ORDERS_V1)
        other.compiled(other_entry)
        assert other.cache.hits == 1


class TestHotReload:
    def _write(self, path, text, mtime):
        path.write_text(text)
        os.utime(path, (mtime, mtime))

    def test_directory_preload(self, tmp_path):
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        self._write(tmp_path / "claims.spec",
                    "goal: submit * review\n", 100.0)
        (tmp_path / "notes.txt").write_text("not a spec")
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.names() == ["claims", "orders"]

    def test_unparseable_file_is_skipped_at_startup(self, tmp_path):
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        self._write(tmp_path / "broken.workflow", "goal: ((((\n", 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.names() == ["orders"]

    def test_mtime_change_reloads(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        assert registry.get("orders").version == 1
        self._write(path, ORDERS_V2, 200.0)
        reloaded = registry.get("orders")
        assert reloaded.version == 2
        assert "stock" in str(reloaded.spec.constraints[0])

    def test_unchanged_mtime_does_not_reload(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        # Rewrite content but keep the mtime: the stat check must not fire.
        self._write(path, ORDERS_V2, 100.0)
        assert registry.get("orders") is entry

    def test_file_appearing_after_startup_is_found(self, tmp_path):
        registry = SpecRegistry(specs_dir=tmp_path)
        with pytest.raises(UnknownSpecError):
            registry.get("orders")
        self._write(tmp_path / "orders.workflow", ORDERS_V1, 100.0)
        assert registry.get("orders").version == 1

    def test_vanished_file_keeps_serving_last_good_parse(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        path.unlink()
        assert registry.get("orders") is entry

    def test_mid_edit_garbage_keeps_serving_last_good_parse(self, tmp_path):
        path = tmp_path / "orders.workflow"
        self._write(path, ORDERS_V1, 100.0)
        registry = SpecRegistry(specs_dir=tmp_path)
        entry = registry.get("orders")
        self._write(path, "goal: ((((\n", 200.0)
        assert registry.get("orders") is entry


class TestInline:
    def test_identical_text_resolves_to_identical_entry(self):
        registry = SpecRegistry()
        a = registry.resolve_inline("goal: a * b\n")
        b = registry.resolve_inline("goal: a * b\n")
        assert a is b
        assert a.name.startswith("inline:")

    def test_different_text_gets_a_different_key(self):
        registry = SpecRegistry()
        a = registry.resolve_inline("goal: a * b\n")
        b = registry.resolve_inline("goal: b * a\n")
        assert a.key != b.key

    def test_inline_memo_is_bounded(self):
        from repro.service import registry as registry_module

        registry = SpecRegistry()
        for i in range(registry_module._INLINE_MEMO + 10):
            registry.resolve_inline(f"goal: a{i} * b{i}\n")
        assert len(registry._inline) == registry_module._INLINE_MEMO
