"""Tests for the synthetic workload generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.algebra import Constraint, constraint_events
from repro.ctr.formulas import event_names, goal_size
from repro.ctr.unique import is_unique_event_goal
from repro.graph.generators import (
    or_tree,
    parallel_chains,
    random_constraints,
    random_goal,
    serial_chain,
)


class TestStructuredFamilies:
    def test_serial_chain(self):
        goal = serial_chain(4)
        assert goal_size(goal) == 5
        assert event_names(goal) == frozenset({"e1", "e2", "e3", "e4"})

    def test_serial_chain_of_one(self):
        assert goal_size(serial_chain(1)) == 1

    def test_parallel_chains(self):
        goal = parallel_chains(3, 2)
        assert len(event_names(goal)) == 6
        assert is_unique_event_goal(goal)

    def test_or_tree(self):
        goal = or_tree(3)
        assert len(event_names(goal)) == 8

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            serial_chain(0)
        with pytest.raises(ValueError):
            parallel_chains(0, 3)


class TestRandomGoal:
    @given(st.integers(1, 12), st.integers(0, 2**31))
    def test_unique_event_by_construction(self, n, seed):
        goal = random_goal(n, seed=seed)
        assert is_unique_event_goal(goal)
        assert len(event_names(goal)) == n

    def test_seed_reproducibility(self):
        assert random_goal(8, seed=11) == random_goal(8, seed=11)

    def test_different_seeds_differ(self):
        goals = {random_goal(8, seed=s) for s in range(10)}
        assert len(goals) > 1


class TestRandomConstraints:
    @given(st.integers(0, 2**31), st.integers(1, 6))
    def test_constraints_use_goal_vocabulary(self, seed, count):
        events = [f"e{i}" for i in range(1, 6)]
        constraints = random_constraints(events, count, seed=seed)
        assert len(constraints) == count
        for c in constraints:
            assert isinstance(c, Constraint)
            assert constraint_events(c) <= set(events)

    def test_needs_two_events(self):
        with pytest.raises(ValueError):
            random_constraints(["only"], 1, seed=0)

    def test_seed_reproducibility(self):
        events = [f"e{i}" for i in range(1, 6)]
        assert random_constraints(events, 5, seed=3) == random_constraints(
            events, 5, seed=3
        )
