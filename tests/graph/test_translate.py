"""Tests for the CFG → concurrent-Horn translation (formula (1))."""

import pytest

from repro.ctr.formulas import Test, atoms
from repro.ctr.parser import parse_goal
from repro.ctr.pretty import pretty
from repro.ctr.traces import traces
from repro.errors import SpecificationError
from repro.graph.cfg import ControlFlowGraph
from repro.graph.translate import to_goal
from repro.workflows.figure1 import figure1_goal

A, B, C, D = atoms("a b c d")


class TestBasicShapes:
    def test_chain(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        assert to_goal(g) == A >> B >> C

    def test_and_diamond(self):
        g = ControlFlowGraph()
        g.add_arc("s", "a")
        g.add_arc("s", "b")
        g.add_arc("a", "t")
        g.add_arc("b", "t")
        goal = to_goal(g)
        s, t = atoms("s t")
        assert goal == s >> (A | B) >> t

    def test_or_diamond(self):
        g = ControlFlowGraph()
        g.set_split("s", "or")
        g.add_arc("s", "a")
        g.add_arc("s", "b")
        g.add_arc("a", "t")
        g.add_arc("b", "t")
        goal = to_goal(g)
        assert traces(goal) == {("s", "a", "t"), ("s", "b", "t")}

    def test_unbalanced_branches(self):
        g = ControlFlowGraph()
        g.add_arc("s", "a")
        g.add_arc("s", "t")
        g.add_arc("a", "b")
        g.add_arc("b", "t")
        # s splits into (a ⊗ b) and the direct arc; both join at t... but a
        # direct arc makes this a parallel between a chain and nothing -
        # still series-parallel.
        goal = to_goal(g)
        assert ("s", "a", "b", "t") in traces(goal)


class TestConditions:
    def test_condition_becomes_test(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b", condition="ok")
        goal = to_goal(g)
        assert goal == A >> Test("ok") >> B

    def test_predicate_carried(self):
        pred = lambda db: True  # noqa: E731
        g = ControlFlowGraph()
        g.add_arc("a", "b", condition="ok", predicate=pred)
        goal = to_goal(g)
        test_node = goal.parts[1]
        assert isinstance(test_node, Test)
        assert test_node.predicate is pred


class TestFigure1:
    def test_matches_paper_formula(self):
        # Formula (1) of the paper, in the ASCII syntax.
        expected = parse_goal(
            "a * (cond1? * b * ((d * cond3? * h) + e) * j"
            " | cond2? * c * ((f * i * cond4?) + (g * cond5?))) * k"
        )
        assert traces(figure1_goal()) == traces(expected)

    def test_renders_compactly(self):
        text = pretty(figure1_goal())
        assert text.startswith("a * (")
        assert text.endswith(") * k")


class TestRejection:
    def test_non_series_parallel_rejected(self):
        # The "N" graph: s->a, s->b, a->t, a->u? Classic non-SP shape:
        g = ControlFlowGraph()
        g.add_arc("s", "a")
        g.add_arc("s", "b")
        g.add_arc("a", "c")
        g.add_arc("b", "c")
        g.add_arc("b", "d")
        g.add_arc("c", "t")
        g.add_arc("d", "t")
        with pytest.raises(SpecificationError):
            to_goal(g)

    def test_cyclic_rejected(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        g.add_arc("c", "b")
        with pytest.raises(SpecificationError):
            to_goal(g)
