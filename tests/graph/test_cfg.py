"""Tests for the control-flow-graph model."""

import pytest

from repro.errors import SpecificationError
from repro.graph.cfg import AND, OR, Arc, ControlFlowGraph


def diamond():
    g = ControlFlowGraph()
    g.add_arc("s", "l")
    g.add_arc("s", "r")
    g.add_arc("l", "t")
    g.add_arc("r", "t")
    return g


class TestConstruction:
    def test_arcs_register_activities(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b")
        assert g.activities == frozenset({"a", "b"})

    def test_self_loop_rejected(self):
        g = ControlFlowGraph()
        with pytest.raises(SpecificationError):
            g.add_arc("a", "a")

    def test_empty_name_rejected(self):
        g = ControlFlowGraph()
        with pytest.raises(SpecificationError):
            g.add_activity("")

    def test_conditions_on_arcs(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b", condition="ok")
        assert g.arcs == (Arc("a", "b", "ok"),)


class TestSplits:
    def test_default_split_is_and(self):
        g = diamond()
        assert g.split_of("s") == AND

    def test_declared_split(self):
        g = diamond()
        g.set_split("s", OR)
        assert g.split_of("s") == OR

    def test_bad_split_kind(self):
        g = diamond()
        with pytest.raises(SpecificationError):
            g.set_split("s", "xor")


class TestTerminals:
    def test_initial_and_final(self):
        g = diamond()
        assert g.initial == "s"
        assert g.final == "t"

    def test_two_sources_rejected(self):
        g = ControlFlowGraph()
        g.add_arc("a", "c")
        g.add_arc("b", "c")
        with pytest.raises(SpecificationError):
            g.initial

    def test_two_sinks_rejected(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b")
        g.add_arc("a", "c")
        with pytest.raises(SpecificationError):
            g.final


class TestNeighbours:
    def test_successors_predecessors(self):
        g = diamond()
        assert {a.target for a in g.successors("s")} == {"l", "r"}
        assert {a.source for a in g.predecessors("t")} == {"l", "r"}


class TestCycles:
    def test_acyclic_passes(self):
        diamond().check_acyclic()

    def test_cycle_detected(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        g.add_arc("c", "a")
        with pytest.raises(SpecificationError):
            g.check_acyclic()
