"""Tests for trigger (ECA rule) compilation into the control flow."""

import pytest

from repro.ctr.formulas import Atom, Test, atoms, seq
from repro.ctr.traces import traces
from repro.errors import RecursionError_
from repro.graph.triggers import Trigger, apply_triggers

A, B, C = atoms("a b c")
REACT = Atom("react")


class TestUnconditional:
    def test_action_appended_after_event(self):
        got = apply_triggers(A >> B, [Trigger("a", REACT)])
        assert got == A >> REACT >> B

    def test_every_occurrence_rewritten(self):
        goal = (A >> B) + (C >> A)
        got = apply_triggers(goal, [Trigger("a", REACT)])
        assert got == (A >> REACT >> B) + (C >> A >> REACT)

    def test_multiple_triggers_on_same_event(self):
        r2 = Atom("react2")
        got = apply_triggers(A, [Trigger("a", REACT), Trigger("a", r2)])
        assert got == A >> REACT >> r2


class TestConditional:
    def test_guarded_action_shape(self):
        got = apply_triggers(A, [Trigger("a", REACT, condition="low")])
        assert got == A >> (seq(Test("low"), REACT) + Test("not_low"))

    def test_negated_predicate_generated(self):
        pred = lambda db: db.contains("x", 1)  # noqa: E731
        trigger = Trigger("a", REACT, condition="low", predicate=pred)
        got = apply_triggers(A, [trigger])
        branch = got.parts[1]
        negative_test = branch.parts[1]
        assert negative_test.name == "not_low"

        class FakeDb:
            def contains(self, *args):
                return False

        assert negative_test.predicate(FakeDb()) is True

    def test_semantics(self):
        got = apply_triggers(A >> B, [Trigger("a", REACT, condition="low")])
        assert traces(got) == {("a", "react", "b"), ("a", "b")}


class TestCascades:
    def test_cascading_triggers_expand(self):
        t1 = Trigger("a", Atom("b2"))
        t2 = Trigger("b2", Atom("c2"))
        got = apply_triggers(A, [t1, t2])
        assert got == A >> Atom("b2") >> Atom("c2")

    def test_cyclic_cascade_rejected(self):
        t1 = Trigger("a", Atom("b2"))
        t2 = Trigger("b2", Atom("a"))
        with pytest.raises(RecursionError_):
            apply_triggers(A, [t1, t2])

    def test_self_trigger_rejected(self):
        with pytest.raises(RecursionError_):
            apply_triggers(A, [Trigger("a", Atom("a"))])
