"""Tests for the Graphviz DOT exporters."""

from repro.core.compiler import compile_workflow
from repro.constraints.algebra import order
from repro.ctr.formulas import Isolated, Possibility, Test, atoms
from repro.graph.cfg import ControlFlowGraph
from repro.graph.dot import cfg_to_dot, goal_to_dot
from repro.workflows.figure1 import figure1_graph

A, B, C = atoms("a b c")


class TestCfgDot:
    def test_basic_structure(self):
        g = ControlFlowGraph()
        g.add_arc("a", "b", condition="ok")
        dot = cfg_to_dot(g)
        assert dot.startswith('digraph "workflow" {')
        assert dot.rstrip().endswith("}")
        assert '"a" -> "b" [label="ok"' in dot

    def test_split_annotations(self):
        g = figure1_graph()
        dot = cfg_to_dot(g, title="figure1")
        assert "[AND]" in dot   # node a
        assert "[OR]" in dot    # nodes b and c

    def test_every_activity_declared(self):
        g = figure1_graph()
        dot = cfg_to_dot(g)
        for activity in g.activities:
            assert f'"{activity}"' in dot

    def test_quoting(self):
        g = ControlFlowGraph()
        g.add_arc('say "hi"', "b")
        dot = cfg_to_dot(g)
        assert '\\"hi\\"' in dot


class TestGoalDot:
    def test_operator_tree(self):
        dot = goal_to_dot(A >> (B + C))
        assert 'label="⊗"' in dot
        assert 'label="∨"' in dot
        assert 'label="a"' in dot

    def test_serial_edges_numbered(self):
        dot = goal_to_dot(A >> B)
        assert 'label="1"' in dot and 'label="2"' in dot

    def test_sync_edges_dashed(self):
        compiled = compile_workflow(A | B, [order("a", "b")])
        dot = goal_to_dot(compiled.goal)
        assert "send xi1" in dot and "recv xi1" in dot
        assert "style=dashed" in dot

    def test_modalities_and_tests(self):
        goal = Isolated(A >> Test("cond")) | Possibility(B)
        dot = goal_to_dot(goal)
        assert 'label="⊙"' in dot
        assert 'label="◇"' in dot
        assert 'label="cond?"' in dot

    def test_output_is_balanced(self):
        dot = goal_to_dot((A | B) >> C)
        assert dot.count("{") == dot.count("}")
