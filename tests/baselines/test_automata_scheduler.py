"""Tests for the automata-synthesis scheduling baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.automata_scheduler import AutomatonScheduler
from repro.constraints.algebra import absent, must, order
from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import traces
from repro.errors import IneligibleEventError, InconsistentWorkflowError
from tests.conftest import constraints_over, unique_event_goals

A, B, C, D = atoms("a b c d")


def language(scheduler: AutomatonScheduler, limit: int = 10_000):
    """All complete schedules of the pruned automaton (DFS)."""
    out = set()

    def dfs(state, prefix):
        if state in scheduler.accepting:
            out.add(prefix)
            assert len(out) <= limit
        for event, target in sorted(scheduler.transitions.get(state, {}).items()):
            dfs(target, prefix + (event,))

    dfs(scheduler.initial_state, ())
    return out


class TestSynthesis:
    def test_simple_schedule(self):
        scheduler = AutomatonScheduler.build(A | B, [order("a", "b")])
        assert scheduler.run() == ("a", "b")

    def test_inconsistent_raises(self):
        with pytest.raises(InconsistentWorkflowError):
            AutomatonScheduler.build(A >> B, [order("b", "a")])

    def test_pruning_removes_dead_ends(self):
        # Unconstrained, c could fire first; with must(b) in force, firing
        # the c branch would be a dead end (b unreachable) - it must be
        # pruned from the eligible set up front.
        goal = (B + C) >> A
        scheduler = AutomatonScheduler.build(goal, [must("b")])
        assert scheduler.eligible() == {"b"}

    def test_state_count_reported(self):
        scheduler = AutomatonScheduler.build(A | B | C, [])
        assert scheduler.state_count >= 4


class TestScheduling:
    def test_stepping(self):
        scheduler = AutomatonScheduler.build((A | B) >> C, [order("a", "b")])
        assert scheduler.eligible() == {"a"}
        scheduler.fire("a")
        assert scheduler.eligible() == {"b"}
        scheduler.fire("b")
        scheduler.fire("c")
        assert scheduler.can_finish()
        assert scheduler.history == ("a", "b", "c")

    def test_ineligible_raises(self):
        scheduler = AutomatonScheduler.build(A >> B, [])
        with pytest.raises(IneligibleEventError):
            scheduler.fire("b")

    def test_reset(self):
        scheduler = AutomatonScheduler.build(A >> B, [])
        scheduler.fire("a")
        scheduler.reset()
        assert scheduler.history == ()
        assert scheduler.eligible() == {"a"}


class TestAgreementWithCompiledScheduler:
    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_same_language(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        compiled = compile_workflow(goal, [constraint])
        if not compiled.consistent:
            with pytest.raises(InconsistentWorkflowError):
                AutomatonScheduler.build(goal, [constraint])
            return
        scheduler = AutomatonScheduler.build(goal, [constraint])
        assert language(scheduler) == set(compiled.schedules())

    def test_schedules_satisfy_constraints(self):
        constraints = [order("a", "b"), absent("d")]
        scheduler = AutomatonScheduler.build(A | B | (C + D), constraints)
        for schedule in language(scheduler):
            assert all(satisfies(schedule, c) for c in constraints)
            assert schedule in traces(A | B | (C + D))
