"""Tests for the constraint → DFA compilation."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.automata import ConstraintAutomaton, ProductAutomaton
from repro.constraints.algebra import absent, conj, disj, must, order, serial
from repro.constraints.satisfy import satisfies
from tests.conftest import constraints_over

EVENTS = ("a", "b", "c", "d")


def all_sequences(events=EVENTS, max_len=4):
    for size in range(max_len + 1):
        for subset in itertools.combinations(events, size):
            yield from itertools.permutations(subset)


class TestConstraintAutomaton:
    def test_must(self):
        dfa = ConstraintAutomaton.build(must("a"))
        assert dfa.accepts(("a",))
        assert not dfa.accepts(("b",))

    def test_absent(self):
        dfa = ConstraintAutomaton.build(absent("a"))
        assert dfa.accepts(())
        assert not dfa.accepts(("a",))

    def test_order(self):
        dfa = ConstraintAutomaton.build(order("a", "b"))
        assert dfa.accepts(("a", "b"))
        assert not dfa.accepts(("b", "a"))
        assert not dfa.accepts(("a",))

    def test_violation_is_a_sink(self):
        dfa = ConstraintAutomaton.build(order("a", "b"))
        state = dfa.initial()
        state = dfa.step(state, "b")  # premature: permanent violation
        state = dfa.step(state, "a")
        state = dfa.step(state, "b")  # unique events would forbid this anyway
        assert not dfa.accepting(state)

    def test_alphabet(self):
        dfa = ConstraintAutomaton.build(conj(order("a", "b"), must("c")))
        assert dfa.alphabet == frozenset({"a", "b", "c"})

    def test_irrelevant_events_ignored(self):
        dfa = ConstraintAutomaton.build(order("a", "b"))
        assert dfa.accepts(("x", "a", "y", "b", "z"))

    def test_long_serial_normalized(self):
        dfa = ConstraintAutomaton.build(serial("a", "b", "c"))
        assert dfa.accepts(("a", "b", "c"))
        assert not dfa.accepts(("a", "c", "b"))

    @settings(max_examples=80, deadline=None)
    @given(constraints_over(EVENTS))
    def test_agrees_with_satisfies(self, constraint):
        dfa = ConstraintAutomaton.build(constraint)
        for sequence in all_sequences():
            assert dfa.accepts(sequence) == satisfies(sequence, constraint)


class TestNestedAcceptance:
    """Regression: acceptance over nested Or/And combinations.

    ``conj``/``disj`` flatten only same-kind nestings, so an Or inside an
    And (and vice versa) survives into the automaton's acceptance
    evaluation — exactly the shapes the memoized ``accepting()`` walks.
    """

    def test_or_inside_and(self):
        constraint = conj(disj(must("a"), must("b")), disj(must("c"), absent("a")))
        dfa = ConstraintAutomaton.build(constraint)
        for sequence in all_sequences(("a", "b", "c"), max_len=3):
            assert dfa.accepts(sequence) == satisfies(sequence, constraint)
        assert dfa.accepts(("b",))
        assert dfa.accepts(("a", "c"))
        assert not dfa.accepts(("a",))
        assert not dfa.accepts(())

    def test_and_inside_or(self):
        constraint = disj(conj(must("a"), order("b", "c")), conj(absent("b"), must("d")))
        dfa = ConstraintAutomaton.build(constraint)
        for sequence in all_sequences(max_len=4):
            assert dfa.accepts(sequence) == satisfies(sequence, constraint)
        assert dfa.accepts(("a", "b", "c"))
        assert dfa.accepts(("d",))
        assert not dfa.accepts(("a", "c", "b"))
        assert not dfa.accepts(("b", "d"))

    def test_accepting_memoized(self):
        dfa = ConstraintAutomaton.build(conj(disj(must("a"), must("b")), must("c")))
        state = dfa.initial()
        first = dfa.accepting(state)
        assert dfa._accept_cache
        assert dfa.accepting(state) == first
        state = dfa.step(dfa.step(state, "a"), "c")
        assert dfa.accepting(state)
        assert dfa.accepting(state)


class TestProductAutomaton:
    def test_product_accepts_intersection(self):
        product = ProductAutomaton.build([order("a", "b"), absent("c")])
        assert product.accepts(("a", "b"))
        assert not product.accepts(("a", "b", "c"))
        assert not product.accepts(("b", "a"))

    def test_empty_product_accepts_everything(self):
        product = ProductAutomaton.build([])
        assert product.accepts(("x", "y"))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(constraints_over(EVENTS), min_size=1, max_size=3))
    def test_agrees_with_conjunction(self, constraints):
        product = ProductAutomaton.build(constraints)
        for sequence in all_sequences(max_len=3):
            expected = all(satisfies(sequence, c) for c in constraints)
            assert product.accepts(sequence) == expected
