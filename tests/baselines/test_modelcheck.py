"""Tests for the explicit-state model-checking baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.modelcheck import model_check_consistency, model_check_property
from repro.constraints.algebra import must, order
from repro.constraints.klein import klein_order
from repro.constraints.satisfy import satisfies
from repro.core.verify import is_consistent, verify_property
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import traces
from repro.graph.generators import parallel_chains
from tests.conftest import constraints_over, unique_event_goals

A, B, C = atoms("a b c")


class TestConsistency:
    def test_consistent_with_witness(self):
        result = model_check_consistency(A | B, [order("a", "b")])
        assert result.holds
        assert result.witness == ("a", "b")

    def test_inconsistent(self):
        result = model_check_consistency(A >> B, [order("b", "a")])
        assert not result.holds
        assert result.witness is None

    def test_state_count_reported(self):
        result = model_check_consistency(parallel_chains(3, 2), [])
        assert result.states_explored > 0

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_agrees_with_apply_based_consistency(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        result = model_check_consistency(goal, [constraint])
        assert result.holds == is_consistent(goal, [constraint])
        if result.holds:
            assert result.witness in traces(goal)
            assert satisfies(result.witness, constraint)


class TestPropertyChecking:
    def test_holding_property(self):
        result = model_check_property(A >> B, [], order("a", "b"))
        assert result.holds

    def test_violated_property_gives_counterexample(self):
        result = model_check_property(A | B, [], order("a", "b"))
        assert not result.holds
        assert result.witness == ("b", "a")

    def test_constraints_restrict_executions(self):
        goal = A | B | C
        # Unconstrained, "a before b" can fail; with klein_order(a,b) as a
        # background constraint it still can (if only b occurs... both always
        # occur here), actually klein == order when both always occur.
        assert not model_check_property(goal, [], order("a", "b")).holds
        assert model_check_property(goal, [klein_order("a", "b")], order("a", "b")).holds

    @settings(max_examples=30, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_agrees_with_apply_based_verification(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        background = data.draw(constraints_over(events))
        prop = data.draw(constraints_over(events))
        mc = model_check_property(goal, [background], prop)
        apply_based = verify_property(goal, [background], prop)
        assert mc.holds == apply_based.holds


class TestStateExplosion:
    def test_states_grow_with_parallel_width(self):
        counts = [
            model_check_consistency(parallel_chains(w, 2), [must("t1_1")]).states_explored
            for w in (1, 2, 3)
        ]
        assert counts[0] < counts[1] < counts[2]
