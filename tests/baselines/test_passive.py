"""Tests for the passive-scheduling baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.passive import (
    PassiveScheduler,
    generate_and_test_consistency,
    validate_sequence,
)
from repro.constraints.algebra import absent, must, order
from repro.constraints.satisfy import Verdict, satisfies
from repro.core.verify import is_consistent
from repro.ctr.formulas import atoms, event_names
from repro.ctr.traces import traces
from tests.conftest import constraints_over, unique_event_goals

A, B, C = atoms("a b c")


class TestPassiveScheduler:
    def test_accepts_valid_stream(self):
        ps = PassiveScheduler([order("a", "b")])
        assert ps.accept("a") is Verdict.UNKNOWN
        assert ps.accept("b") is Verdict.TRUE
        assert ps.finish()

    def test_rejects_violation_immediately(self):
        ps = PassiveScheduler([order("a", "b")])
        assert ps.accept("b") is Verdict.FALSE

    def test_finish_resolves_unknowns(self):
        ps = PassiveScheduler([must("a")])
        ps.accept("b")
        assert not ps.finish()  # 'a' never arrived

    def test_reset(self):
        ps = PassiveScheduler([absent("a")])
        ps.accept("a")
        ps.reset()
        assert ps.history == ()
        assert ps.accept("b") is Verdict.UNKNOWN

    def test_history(self):
        ps = PassiveScheduler([])
        ps.accept("x")
        ps.accept("y")
        assert ps.history == ("x", "y")


class TestValidateSequence:
    @settings(max_examples=60, deadline=None)
    @given(st.permutations(["a", "b", "c", "d"]), st.data())
    def test_matches_satisfies(self, sequence, data):
        constraint = data.draw(constraints_over(("a", "b", "c", "d")))
        sequence = tuple(sequence)
        assert validate_sequence(sequence, [constraint]) == satisfies(
            sequence, constraint
        )

    def test_multiple_constraints(self):
        constraints = [order("a", "b"), absent("z")]
        assert validate_sequence(("a", "b"), constraints)
        assert not validate_sequence(("a", "b", "z"), constraints)


class TestGenerateAndTest:
    def test_finds_witness(self):
        witness = generate_and_test_consistency(A | B, [order("a", "b")])
        assert witness == ("a", "b")

    def test_detects_inconsistency(self):
        witness = generate_and_test_consistency(
            A | B, [order("a", "b"), order("b", "a")]
        )
        assert witness is None

    @settings(max_examples=40, deadline=None)
    @given(unique_event_goals(max_events=4), st.data())
    def test_agrees_with_proactive_consistency(self, goal, data):
        events = tuple(sorted(event_names(goal))) or ("e1", "e2")
        if len(events) == 1:
            events = events + ("e_other",)
        constraint = data.draw(constraints_over(events))
        witness = generate_and_test_consistency(goal, [constraint])
        proactive = is_consistent(goal, [constraint])
        assert (witness is not None) == proactive
        if witness is not None:
            assert witness in traces(goal)
            assert satisfies(witness, constraint)
