"""Tests for the relational database state."""

import pytest

from repro.db.state import Database
from repro.errors import DatabaseError


class TestUpdates:
    def test_insert_and_contains(self):
        db = Database()
        db.insert("r", 1, "x")
        assert db.contains("r", 1, "x")
        assert not db.contains("r", 2, "x")

    def test_insert_is_idempotent(self):
        db = Database()
        db.insert("r", 1)
        db.insert("r", 1)
        assert db.query("r") == [(1,)]

    def test_delete_unconditional(self):
        db = Database()
        db.delete("r", 1)  # absent tuple: no-op, no error
        db.insert("r", 1)
        db.delete("r", 1)
        assert not db.contains("r", 1)

    def test_delete_strict(self):
        db = Database()
        with pytest.raises(DatabaseError):
            db.delete_strict("r", 1)
        db.insert("r", 1)
        db.delete_strict("r", 1)
        assert not db.contains("r", 1)

    def test_assign(self):
        db = Database()
        db.insert("r", 1)
        db.assign("r", [(2,), (3,)])
        assert db.query("r") == [(2,), (3,)]


class TestQueries:
    def test_wildcard_patterns(self):
        db = Database()
        db.insert("flight", "JFK", "CDG")
        db.insert("flight", "JFK", "LHR")
        db.insert("flight", "SFO", "CDG")
        assert db.query("flight", "JFK", None) == [("JFK", "CDG"), ("JFK", "LHR")]
        assert db.query("flight", None, "CDG") == [("JFK", "CDG"), ("SFO", "CDG")]

    def test_no_pattern_returns_all(self):
        db = Database()
        db.insert("r", 2)
        db.insert("r", 1)
        assert db.query("r") == [(1,), (2,)]

    def test_arity_mismatch_matches_nothing(self):
        db = Database()
        db.insert("r", 1, 2)
        assert db.query("r", None) == []

    def test_relation_names(self):
        db = Database()
        db.insert("a", 1)
        db.insert("b", 1)
        db.delete("b", 1)
        assert db.relation_names == frozenset({"a"})

    def test_relation_view_is_frozen(self):
        db = Database()
        db.insert("r", 1)
        assert db.relation("r") == frozenset({(1,)})
        assert db.relation("missing") == frozenset()


class TestSnapshots:
    def test_snapshot_restore(self):
        db = Database()
        db.insert("r", 1)
        db.log.append("e1")
        snap = db.snapshot()
        db.insert("r", 2)
        db.log.append("e2")
        db.restore(snap)
        assert db.query("r") == [(1,)]
        assert db.log.events() == ("e1",)

    def test_copy_is_independent(self):
        db = Database()
        db.insert("r", 1)
        clone = db.copy()
        clone.insert("r", 2)
        assert db.query("r") == [(1,)]
        assert clone.query("r") == [(1,), (2,)]

    def test_same_state_ignores_log(self):
        db1, db2 = Database(), Database()
        db1.insert("r", 1)
        db2.insert("r", 1)
        db1.log.append("x")
        assert db1.same_state(db2)
        db2.insert("r", 2)
        assert not db1.same_state(db2)

    def test_empty_relations_ignored_in_equality(self):
        db1, db2 = Database(), Database()
        db1.insert("r", 1)
        db1.delete("r", 1)
        assert db1.same_state(db2)

    def test_snapshots_are_independent_of_later_mutations(self):
        # Snapshots share frozen relation views internally (the cache that
        # makes repeated snapshotting cheap); mutations must not leak into
        # a snapshot taken earlier.
        db = Database()
        db.insert("r", 1)
        first = db.snapshot()
        db.insert("r", 2)
        second = db.snapshot()
        db.delete("r", 1)
        assert first["r"] == frozenset({(1,)})
        assert second["r"] == frozenset({(1,), (2,)})
        db.restore(first)
        assert db.query("r") == [(1,)]

    def test_restore_then_query_then_mutate(self):
        # The restore seeds the frozen-view cache; a later mutation must
        # invalidate it rather than serve the stale view.
        db = Database()
        db.insert("r", 1)
        snap = db.snapshot()
        db.restore(snap)
        assert db.relation("r") == frozenset({(1,)})
        db.insert("r", 2)
        assert db.relation("r") == frozenset({(1,), (2,)})
        assert snap["r"] == frozenset({(1,)})

    def test_repeated_snapshots_reuse_clean_views(self):
        db = Database()
        db.insert("r", 1)
        a = db.snapshot()
        b = db.snapshot()  # nothing changed: the frozen views are shared
        assert a["r"] is b["r"]
        db.insert("s", 1)  # only 's' is dirty
        c = db.snapshot()
        assert c["r"] is a["r"]
        assert c["s"] == frozenset({(1,)})

    def test_assign_invalidates_frozen_view(self):
        db = Database()
        db.insert("r", 1)
        assert db.relation("r") == frozenset({(1,)})
        db.assign("r", [(2,)])
        assert db.relation("r") == frozenset({(2,)})
        db.delete_strict("r", 2)
        assert db.relation("r") == frozenset()
