"""Stateful property testing of the database substrate.

A hypothesis rule-based state machine drives random interleavings of
inserts, deletes, assignments, snapshots, and restores against both the
real :class:`~repro.db.state.Database` and a plain-dictionary model,
checking they never diverge — the classic model-based testing setup for a
storage engine.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.db.state import Database

RELATIONS = ("orders", "stock", "audit")
VALUES = st.tuples(st.integers(0, 3), st.sampled_from(("x", "y", "z")))


class DatabaseModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database()
        self.model: dict[str, set[tuple]] = {}
        self.model_log: list[str] = []
        self.snapshots = []

    snapshots_bundle = Bundle("snapshots")

    @rule(relation=st.sampled_from(RELATIONS), row=VALUES)
    def insert(self, relation, row):
        self.db.insert(relation, *row)
        self.model.setdefault(relation, set()).add(row)

    @rule(relation=st.sampled_from(RELATIONS), row=VALUES)
    def delete(self, relation, row):
        self.db.delete(relation, *row)
        self.model.get(relation, set()).discard(row)

    @rule(relation=st.sampled_from(RELATIONS), rows=st.lists(VALUES, max_size=3))
    def assign(self, relation, rows):
        self.db.assign(relation, rows)
        self.model[relation] = set(rows)

    @rule(event=st.sampled_from(("a", "b", "c")))
    def log_event(self, event):
        self.db.log.append(event)
        self.model_log.append(event)

    @rule(target=snapshots_bundle)
    def take_snapshot(self):
        return (self.db.snapshot(), {k: set(v) for k, v in self.model.items()},
                list(self.model_log))

    @rule(snap=snapshots_bundle)
    def restore_snapshot(self, snap):
        db_snap, model_state, model_log = snap
        self.db.restore(db_snap)
        self.model = {k: set(v) for k, v in model_state.items()}
        self.model_log = list(model_log)

    @invariant()
    def agrees_with_model(self):
        for relation in RELATIONS:
            expected = sorted(self.model.get(relation, set()))
            assert self.db.query(relation) == expected
        assert self.db.log.events() == tuple(self.model_log)

    @invariant()
    def relation_names_track_nonempty(self):
        expected = frozenset(r for r, rows in self.model.items() if rows)
        assert self.db.relation_names == expected


DatabaseModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestDatabaseModel = DatabaseModel.TestCase
