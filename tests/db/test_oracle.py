"""Tests for the transition oracle and elementary update constructors."""

import pytest

from repro.db.oracle import (
    TransitionOracle,
    assign_op,
    choice_op,
    delete_op,
    insert_op,
)
from repro.db.state import Database
from repro.errors import DatabaseError


class TestRegistry:
    def test_unregistered_events_only_log(self):
        oracle = TransitionOracle()
        db = Database()
        oracle.execute("mystery", db)
        assert db.log.events() == ("mystery",)
        assert db.relation_names == frozenset()

    def test_registered_update_applies_and_logs(self):
        oracle = TransitionOracle()
        oracle.register("book", insert_op("booking", "room-12"))
        db = Database()
        oracle.execute("book", db)
        assert db.contains("booking", "room-12")
        assert db.log.events() == ("book",)

    def test_knows(self):
        oracle = TransitionOracle()
        oracle.register("x", insert_op("r", 1))
        assert oracle.knows("x") and not oracle.knows("y")


class TestElementaryUpdates:
    def test_delete_op(self):
        oracle = TransitionOracle()
        oracle.register("undo", delete_op("r", 1))
        db = Database()
        db.insert("r", 1)
        oracle.execute("undo", db)
        assert not db.contains("r", 1)

    def test_strict_delete_inapplicable(self):
        oracle = TransitionOracle()
        oracle.register("undo", delete_op("r", 1, strict=True))
        with pytest.raises(DatabaseError):
            oracle.execute("undo", Database())

    def test_assign_op(self):
        oracle = TransitionOracle()
        oracle.register("reset", assign_op("r", [(9,)]))
        db = Database()
        db.insert("r", 1)
        oracle.execute("reset", db)
        assert db.query("r") == [(9,)]


class TestNondeterminism:
    def test_choice_op_commits_to_one(self):
        update = choice_op(insert_op("r", "left"), insert_op("r", "right"))
        oracle = TransitionOracle(seed=3)
        db = Database()
        oracle.register("pick", update)
        oracle.execute("pick", db)
        rows = db.query("r")
        assert rows in ([("left",)], [("right",)])

    def test_choice_is_seed_deterministic(self):
        def run(seed):
            oracle = TransitionOracle(seed=seed)
            oracle.register("pick", choice_op(insert_op("r", "l"), insert_op("r", "r")))
            db = Database()
            oracle.execute("pick", db)
            return db.query("r")

        assert run(5) == run(5)

    def test_successors_enumerates_all(self):
        oracle = TransitionOracle()
        oracle.register("pick", choice_op(insert_op("r", "l"), insert_op("r", "r")))
        db = Database()
        states = oracle.successors("pick", db)
        results = sorted(s.query("r")[0][0] for s in states)
        assert results == ["l", "r"]
        # Each successor carries the event in its log.
        assert all(s.log.events() == ("pick",) for s in states)
        # The original database is untouched.
        assert db.query("r") == []

    def test_successors_of_plain_event(self):
        oracle = TransitionOracle()
        db = Database()
        (only,) = oracle.successors("e", db)
        assert only.log.events() == ("e",)

    def test_empty_candidates_is_inapplicable(self):
        oracle = TransitionOracle()
        oracle.register("never", lambda db: [])
        with pytest.raises(DatabaseError):
            oracle.execute("never", Database())
