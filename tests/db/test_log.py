"""Tests for the significant-event log."""

from repro.db.log import EventLog, EventRecord


class TestEventLog:
    def test_append_assigns_sequence(self):
        log = EventLog()
        r0 = log.append("a")
        r1 = log.append("b", payload={"k": 1})
        assert (r0.sequence, r1.sequence) == (0, 1)
        assert r1.payload == {"k": 1}

    def test_events_in_order(self):
        log = EventLog()
        for e in ("x", "y", "z"):
            log.append(e)
        assert log.events() == ("x", "y", "z")

    def test_occurred(self):
        log = EventLog()
        log.append("a")
        assert log.occurred("a") and not log.occurred("b")

    def test_len_and_iter(self):
        log = EventLog()
        log.append("a")
        log.append("b")
        assert len(log) == 2
        assert [r.event for r in log] == ["a", "b"]

    def test_snapshot_restore(self):
        log = EventLog()
        log.append("a")
        snap = log.snapshot()
        log.append("b")
        log.restore(snap)
        assert log.events() == ("a",)

    def test_records_are_immutable(self):
        record = EventRecord(sequence=0, event="a")
        try:
            record.event = "b"
            raised = False
        except AttributeError:
            raised = True
        assert raised
