"""Tests for the declarative query language over database states."""

import pytest

from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.ctr.formulas import Test, atoms, seq
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.query import Query, V, Var, condition_from_query
from repro.db.state import Database
from repro.errors import SpecificationError


def sample_db():
    db = Database()
    db.insert("stock", "widget", "low")
    db.insert("stock", "gadget", "ok")
    db.insert("supplier", "widget", "acme")
    db.insert("supplier", "gadget", "acme")
    db.insert("blocked", "acme")
    return db


class TestVariables:
    def test_factory(self):
        assert V.item == Var("item")
        assert V.item is not V.other

    def test_repr(self):
        assert repr(V.x) == "?x"


class TestEvaluation:
    def test_ground_pattern(self):
        q = Query.where(("stock", "widget", "low"))
        assert q.holds(sample_db())
        assert not Query.where(("stock", "widget", "ok")).holds(sample_db())

    def test_single_variable(self):
        q = Query.where(("stock", V.item, "low"))
        bindings = q.bindings(sample_db())
        assert bindings == [{V.item: "widget"}]

    def test_join_on_shared_variable(self):
        q = Query.where(("stock", V.item, "low"), ("supplier", V.item, V.who))
        bindings = q.bindings(sample_db())
        assert bindings == [{V.item: "widget", V.who: "acme"}]

    def test_join_failure(self):
        db = sample_db()
        db.delete("supplier", "widget", "acme")
        q = Query.where(("stock", V.item, "low"), ("supplier", V.item, V.who))
        assert not q.holds(db)

    def test_repeated_variable_in_pattern(self):
        db = Database()
        db.insert("edge", 1, 1)
        db.insert("edge", 1, 2)
        q = Query.where(("edge", V.x, V.x))
        assert q.bindings(db) == [{V.x: 1}]

    def test_arity_mismatch_ignored(self):
        db = Database()
        db.insert("r", 1, 2, 3)
        assert not Query.where(("r", V.x, V.y)).holds(db)

    def test_empty_query_vacuous(self):
        assert Query.where().holds(Database())


class TestNegation:
    def test_unless(self):
        q = Query.where(("supplier", V.item, V.who)).unless(("blocked", V.who))
        assert not q.holds(sample_db())  # acme is blocked for every item

    def test_unless_passes_when_absent(self):
        db = sample_db()
        db.delete("blocked", "acme")
        q = Query.where(("supplier", V.item, V.who)).unless(("blocked", V.who))
        assert q.holds(db)

    def test_bindings_filtered(self):
        db = sample_db()
        db.insert("supplier", "widget", "globex")
        q = Query.where(("supplier", V.item, V.who)).unless(("blocked", V.who))
        assert q.bindings(db) == [{V.item: "widget", V.who: "globex"}]

    def test_unsafe_negation_rejected(self):
        with pytest.raises(SpecificationError):
            Query.where(("stock", V.item, "low")).unless(("blocked", V.other))

    def test_negation_without_positive_rejected(self):
        with pytest.raises(SpecificationError):
            Query((), (("blocked", "acme"),))


class TestEngineIntegration:
    def test_query_backed_condition(self):
        a, reorder, proceed = atoms("audit reorder proceed")
        low = condition_from_query("low_stock", Query.where(("stock", V.item, "low")))
        ok = Test("stock_ok", Query.where(("stock", V.item, "low")).negated_predicate())
        goal = a >> (seq(low, reorder) + seq(ok, proceed))
        compiled = compile_workflow(goal)

        engine = WorkflowEngine(compiled, db=sample_db())
        assert engine.run().schedule == ("audit", "reorder")

        fresh = Database()
        fresh.insert("stock", "widget", "ok")
        engine2 = WorkflowEngine(compiled, db=fresh)
        assert engine2.run().schedule == ("audit", "proceed")

    def test_condition_sees_live_updates(self):
        a, b, done = atoms("restock verify done")
        oracle = TransitionOracle()
        oracle.register("restock", insert_op("stock", "widget", "ok"))
        refilled = condition_from_query("refilled", Query.where(("stock", V.i, "ok")))
        goal = a >> refilled >> b >> done
        compiled = compile_workflow(goal, [order("restock", "verify")])
        engine = WorkflowEngine(compiled, oracle=oracle, db=Database())
        assert engine.run().schedule == ("restock", "verify", "done")
