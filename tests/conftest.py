"""Shared fixtures and hypothesis strategies for the test-suite.

The central strategies generate *unique-event* concurrent-Horn goals and
CONSTR constraints over their vocabulary, so the compiler equation

    traces(Excise(Apply(C, G)))  ==  { t in traces(G) : t |= C }

can be property-tested exactly against the enumerable trace semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.constraints import algebra, klein
from repro.ctr.formulas import Atom, Goal, Isolated, alt, par, seq

EVENT_POOL = tuple(f"e{i}" for i in range(1, 9))


@st.composite
def unique_event_goals(
    draw,
    min_events: int = 1,
    max_events: int = 5,
    allow_isolated: bool = True,
    allow_shared_choice: bool = True,
) -> Goal:
    """A random unique-event goal over a small fixed vocabulary."""
    n = draw(st.integers(min_events, max_events))
    events = list(EVENT_POOL[:n])

    def build(evts: list[str], depth: int) -> Goal:
        if len(evts) == 1:
            leaf: Goal = Atom(evts[0])
            if allow_isolated and depth > 0 and draw(st.booleans()) and draw(st.booleans()):
                return leaf  # bare atoms are not worth isolating
            return leaf
        kinds = ["seq", "par", "alt"]
        if allow_shared_choice:
            kinds.append("alt_shared")
        kind = draw(st.sampled_from(kinds))
        if kind == "alt_shared":
            # Both alternatives range over the same events with (likely)
            # different structure: the interesting choice-sharing case.
            left = build_plain(evts, depth + 1)
            right = build_plain(evts, depth + 1)
            return alt(left, right)
        split = draw(st.integers(1, len(evts) - 1))
        left_events, right_events = evts[:split], evts[split:]
        left = build(left_events, depth + 1)
        right = build(right_events, depth + 1)
        if kind == "seq":
            combined = seq(left, right)
        elif kind == "par":
            combined = par(left, right)
        else:
            combined = alt(left, right)
        if (
            allow_isolated
            and kind == "seq"
            and depth > 0
            and draw(st.integers(0, 9)) == 0
        ):
            return Isolated(combined)
        return combined

    def build_plain(evts: list[str], depth: int) -> Goal:
        """Choice-free structure over ``evts`` (used inside shared choices)."""
        if len(evts) == 1:
            return Atom(evts[0])
        split = draw(st.integers(1, len(evts) - 1))
        left = build_plain(evts[:split], depth + 1)
        right = build_plain(evts[split:], depth + 1)
        return seq(left, right) if draw(st.booleans()) else par(left, right)

    return build(events, 0)


@st.composite
def constraints_over(draw, events: tuple[str, ...] = EVENT_POOL[:5]):
    """One random CONSTR constraint over the given events."""
    kind = draw(
        st.sampled_from(
            [
                "must",
                "absent",
                "order",
                "serial3",
                "klein_order",
                "klein_existence",
                "mutex",
                "causes",
                "and",
                "or",
            ]
        )
    )
    pick2 = lambda: draw(st.permutations(list(events)))[:2]  # noqa: E731
    if kind == "must":
        return algebra.must(draw(st.sampled_from(list(events))))
    if kind == "absent":
        return algebra.absent(draw(st.sampled_from(list(events))))
    if kind == "order":
        a, b = pick2()
        return algebra.order(a, b)
    if kind == "serial3" and len(events) >= 3:
        a, b, c = draw(st.permutations(list(events)))[:3]
        return algebra.serial(a, b, c)
    if kind == "klein_order":
        a, b = pick2()
        return klein.klein_order(a, b)
    if kind == "klein_existence":
        a, b = pick2()
        return klein.klein_existence(a, b)
    if kind == "mutex":
        a, b = pick2()
        return klein.mutually_exclusive(a, b)
    if kind == "causes":
        a, b = pick2()
        return klein.causes(a, b)
    if kind == "and":
        a, b = pick2()
        c, d = pick2()
        return algebra.conj(algebra.must(a), klein.klein_order(c, d))
    # "or" and the serial3 fallback
    a, b = pick2()
    return algebra.disj(algebra.order(a, b), algebra.absent(a))


@pytest.fixture
def figure1():
    """The paper's Figure 1 specification."""
    from repro.workflows.figure1 import figure1_constraints, figure1_goal

    return figure1_goal(), figure1_constraints()
