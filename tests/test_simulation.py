"""End-to-end simulation: many randomized runs of a real workflow.

Drives the insurance-claims workflow through the full stack — compile,
schedule with a seeded random strategy, execute elementary updates against
a live database — for many different interleavings, and checks the
business invariants on the *database* after every run. This is the
closest thing to production traffic the test-suite has.
"""

import pytest

from repro.constraints.satisfy import satisfies
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine, random_strategy
from repro.core.explain import is_allowed
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database
from repro.workflows.claims import claims_constraints, claims_goal

CLAIM = 7001


def build_oracle() -> TransitionOracle:
    oracle = TransitionOracle()
    oracle.register("register", insert_op("claim", CLAIM, "open"))
    oracle.register("verify_policy", insert_op("check", CLAIM, "policy"))
    oracle.register("appraise", insert_op("check", CLAIM, "appraisal"))
    oracle.register("flag_fraud", insert_op("fraud", CLAIM))
    oracle.register("authorize_payment", insert_op("payment", CLAIM, "authorized"))
    oracle.register("transfer_funds", insert_op("payment", CLAIM, "transferred"))
    oracle.register("deny", insert_op("claim", CLAIM, "denied"))
    oracle.register("send_denial_letter", insert_op("letter", CLAIM))
    return oracle


@pytest.fixture(scope="module")
def compiled():
    return compile_workflow(claims_goal(), claims_constraints())


class TestSimulation:
    def test_many_randomized_runs(self, compiled):
        seen_settled = seen_denied = seen_fraud = 0
        for seed in range(60):
            db = Database()
            engine = WorkflowEngine(
                compiled,
                oracle=build_oracle(),
                db=db,
                strategy=random_strategy(seed=seed),
            )
            report = engine.run()
            assert report.completed

            # The schedule really is one the specification allows.
            assert is_allowed(compiled, report.schedule)
            for constraint in claims_constraints():
                assert satisfies(report.schedule, constraint)

            # Database-level business invariants.
            paid = db.contains("payment", CLAIM, "transferred")
            fraudulent = db.contains("fraud", CLAIM)
            denied = db.contains("claim", CLAIM, "denied")
            if fraudulent:
                seen_fraud += 1
                assert not paid, "fraud hold violated in the database"
                assert db.contains("letter", CLAIM), "fraud without denial letter"
            if paid:
                seen_settled += 1
                assert db.contains("check", CLAIM, "policy")
                assert db.contains("check", CLAIM, "appraisal")
                assert db.contains("payment", CLAIM, "authorized")
            if denied:
                seen_denied += 1
                assert db.contains("letter", CLAIM)
            assert paid or denied, "every claim ends settled or denied"

            # The log replays the schedule exactly.
            assert db.log.events() == report.schedule

        # The random strategies actually explored both outcomes.
        assert seen_settled > 0
        assert seen_denied > 0
        assert seen_fraud > 0

    def test_every_enumerated_schedule_is_runnable(self, compiled):
        count = 0
        for schedule in compiled.schedules(limit=200_000):
            count += 1
            if count > 200:
                break
            engine = WorkflowEngine(compiled, oracle=build_oracle(), db=Database())
            for event in schedule:
                assert event in engine.eligible()
                engine.fire(event)
        assert count > 100  # the claims workflow has real breadth
